//! Write batching: group point writes and apply them with one lock
//! acquisition per shard.
//!
//! Under contention the lock acquisition dominates a small `HashMap`
//! update, so amortizing it across a batch of writes is the §6 recipe for
//! write-heavy services (RocksDB's group commit). A [`WriteBatch`] is a
//! plain buffer; [`crate::PolyStore::apply`] sorts it by shard and takes
//! each shard lock exactly once.

/// One buffered write: `Some(bytes)` is a put, `None` a remove.
pub type BatchOp = (u64, Option<Vec<u8>>);

/// A buffer of point writes applied atomically per shard.
///
/// Batches are *not* atomic across shards: a concurrent reader can observe
/// shard A's writes before shard B's. Within one shard, all writes land
/// under a single critical section.
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self { ops: Vec::with_capacity(n) }
    }

    /// Buffers a put of a byte value.
    pub fn put(&mut self, key: u64, value: impl Into<Vec<u8>>) {
        self.ops.push((key, Some(value.into())));
    }

    /// Buffers a put of a `u64` value in its 8-byte little-endian form —
    /// the protocol-v2 compatibility encoding (see
    /// [`crate::PolyStore::put_u64`]).
    pub fn put_u64(&mut self, key: u64, value: u64) {
        self.put(key, value.to_le_bytes().to_vec());
    }

    /// Buffers a remove.
    pub fn remove(&mut self, key: u64) {
        self.ops.push((key, None));
    }

    /// Number of buffered writes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drops all buffered writes, keeping the allocation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// The buffered writes, in insertion order (last write to a key wins
    /// when applied).
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_buffers_in_order() {
        let mut b = WriteBatch::new();
        assert!(b.is_empty());
        b.put(1, vec![10u8]);
        b.remove(1);
        b.put_u64(2, 20);
        assert_eq!(b.len(), 3);
        assert_eq!(
            b.ops(),
            &[(1, Some(vec![10u8])), (1, None), (2, Some(20u64.to_le_bytes().to_vec()))]
        );
        b.clear();
        assert!(b.is_empty());
    }
}
