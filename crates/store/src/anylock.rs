//! A lock backend selected at runtime by [`LockKind`].
//!
//! The store's shards must be generic over every `lockin` algorithm while
//! the backend is a *runtime* choice (CLI flag, sweep axis). The five
//! [`lockin::RawLock`] implementors go through [`lockin::Lock`]; MCS and
//! CLH allocate a queue node per acquisition and therefore expose guard
//! APIs, so their variants carry the data cell themselves.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

use lockin::{
    ClhGuard, ClhLock, FutexMutex, Lock, LockGuard, McsGuard, McsLock, Mutexee, TasLock,
    TicketLock, TtasLock,
};
use poly_locks_sim::LockKind;

/// Data protected by a lock algorithm chosen at runtime.
pub enum AnyLock<T> {
    /// glibc-style futex mutex (the paper's baseline).
    Mutex(Lock<T, FutexMutex>),
    /// The paper's optimized futex mutex.
    Mutexee(Lock<T, Mutexee>),
    /// Test-and-set spinlock.
    Tas(Lock<T, TasLock>),
    /// Test-and-test-and-set spinlock.
    Ttas(Lock<T, TtasLock>),
    /// Ticket spinlock.
    Ticket(Lock<T, TicketLock>),
    /// MCS queue lock plus its data cell.
    Mcs(McsLock, UnsafeCell<T>),
    /// CLH queue lock plus its data cell.
    Clh(ClhLock, UnsafeCell<T>),
}

// SAFETY: every variant serializes access to its data through a real
// mutual-exclusion primitive; `T: Send` suffices because at most one
// thread reaches the data at a time (same argument as `lockin::Lock`).
unsafe impl<T: Send> Send for AnyLock<T> {}
// SAFETY: as above — `&AnyLock` only yields the data through a guard.
unsafe impl<T: Send> Sync for AnyLock<T> {}

impl<T> AnyLock<T> {
    /// Wraps `value` behind a default-configured lock of the given kind.
    pub fn new(kind: LockKind, value: T) -> Self {
        match kind {
            LockKind::Mutex => AnyLock::Mutex(Lock::new(value)),
            LockKind::Mutexee => AnyLock::Mutexee(Lock::new(value)),
            LockKind::Tas => AnyLock::Tas(Lock::new(value)),
            LockKind::Ttas => AnyLock::Ttas(Lock::new(value)),
            LockKind::Ticket => AnyLock::Ticket(Lock::new(value)),
            LockKind::Mcs => AnyLock::Mcs(McsLock::new(), UnsafeCell::new(value)),
            LockKind::Clh => AnyLock::Clh(ClhLock::new(), UnsafeCell::new(value)),
        }
    }

    /// The backend this lock was built with.
    pub fn kind(&self) -> LockKind {
        match self {
            AnyLock::Mutex(_) => LockKind::Mutex,
            AnyLock::Mutexee(_) => LockKind::Mutexee,
            AnyLock::Tas(_) => LockKind::Tas,
            AnyLock::Ttas(_) => LockKind::Ttas,
            AnyLock::Ticket(_) => LockKind::Ticket,
            AnyLock::Mcs(..) => LockKind::Mcs,
            AnyLock::Clh(..) => LockKind::Clh,
        }
    }

    /// Acquires the lock, blocking until held.
    pub fn lock(&self) -> AnyGuard<'_, T> {
        match self {
            AnyLock::Mutex(l) => AnyGuard::Mutex(l.lock()),
            AnyLock::Mutexee(l) => AnyGuard::Mutexee(l.lock()),
            AnyLock::Tas(l) => AnyGuard::Tas(l.lock()),
            AnyLock::Ttas(l) => AnyGuard::Ttas(l.lock()),
            AnyLock::Ticket(l) => AnyGuard::Ticket(l.lock()),
            AnyLock::Mcs(l, cell) => AnyGuard::Mcs(l.lock(), cell),
            AnyLock::Clh(l, cell) => AnyGuard::Clh(l.lock(), cell),
        }
    }

    /// Mutable access without locking (exclusive by construction).
    pub fn get_mut(&mut self) -> &mut T {
        match self {
            AnyLock::Mutex(l) => l.get_mut(),
            AnyLock::Mutexee(l) => l.get_mut(),
            AnyLock::Tas(l) => l.get_mut(),
            AnyLock::Ttas(l) => l.get_mut(),
            AnyLock::Ticket(l) => l.get_mut(),
            AnyLock::Mcs(_, cell) | AnyLock::Clh(_, cell) => cell.get_mut(),
        }
    }
}

/// RAII guard over [`AnyLock`]-protected data.
pub enum AnyGuard<'a, T> {
    /// Guard of the MUTEX backend.
    Mutex(LockGuard<'a, T, FutexMutex>),
    /// Guard of the MUTEXEE backend.
    Mutexee(LockGuard<'a, T, Mutexee>),
    /// Guard of the TAS backend.
    Tas(LockGuard<'a, T, TasLock>),
    /// Guard of the TTAS backend.
    Ttas(LockGuard<'a, T, TtasLock>),
    /// Guard of the TICKET backend.
    Ticket(LockGuard<'a, T, TicketLock>),
    /// Guard of the MCS backend (queue guard plus the data cell it protects).
    Mcs(McsGuard<'a>, &'a UnsafeCell<T>),
    /// Guard of the CLH backend (queue guard plus the data cell it protects).
    Clh(ClhGuard<'a>, &'a UnsafeCell<T>),
}

impl<T> Deref for AnyGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self {
            AnyGuard::Mutex(g) => g,
            AnyGuard::Mutexee(g) => g,
            AnyGuard::Tas(g) => g,
            AnyGuard::Ttas(g) => g,
            AnyGuard::Ticket(g) => g,
            // SAFETY: the queue guard proves the lock is held, so this
            // thread has exclusive access to the cell until drop.
            AnyGuard::Mcs(_, cell) | AnyGuard::Clh(_, cell) => unsafe { &*cell.get() },
        }
    }
}

impl<T> DerefMut for AnyGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self {
            AnyGuard::Mutex(g) => g,
            AnyGuard::Mutexee(g) => g,
            AnyGuard::Tas(g) => g,
            AnyGuard::Ttas(g) => g,
            AnyGuard::Ticket(g) => g,
            // SAFETY: as in `deref`; `&mut self` prevents aliasing the guard.
            AnyGuard::Mcs(_, cell) | AnyGuard::Clh(_, cell) => unsafe { &mut *cell.get() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_backend_round_trips() {
        for kind in LockKind::ALL {
            let l = AnyLock::new(kind, 0u64);
            assert_eq!(l.kind(), kind);
            *l.lock() += 41;
            *l.lock() += 1;
            assert_eq!(*l.lock(), 42, "{}", kind.label());
        }
    }

    #[test]
    fn every_backend_excludes_concurrent_increments() {
        // Tiny counts: the host may have a single hardware thread, where
        // spin handovers cost a scheduler quantum each.
        let threads = 2;
        let iters = 200;
        for kind in LockKind::ALL {
            let l = AnyLock::new(kind, 0u64);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        for _ in 0..iters {
                            *l.lock() += 1;
                        }
                    });
                }
            });
            assert_eq!(*l.lock(), threads * iters, "{}", kind.label());
        }
    }
}
