//! Bridging measured store stats into the `poly-energy` model.
//!
//! The build/test hosts rarely expose RAPL, so the driver reports
//! *modeled* energy instead of pretending to measure it: the per-shard
//! stats give each context's time split (working, waiting on a shard
//! lock, idle between paced arrivals), and the calibrated Xeon
//! [`PowerModel`] prices each slice by the activity class the lock
//! algorithm actually executes while waiting — spinning burns
//! [`ActivityClass`] power, sleeping locks deschedule the context. This
//! is the paper's §4 argument run in reverse: from behavior to joules.

use std::time::Duration;

use poly_energy::{ActivityClass, CtxPowerState, MachineShape, PowerConfig, PowerModel, VfPoint};
use poly_locks_sim::LockKind;

/// Modeled energy outcome of one load run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Average machine power over the run, watts.
    pub avg_power_w: f64,
    /// Total energy over the run, joules.
    pub energy_j: f64,
    /// Energy per completed operation, microjoules.
    pub epo_uj: f64,
}

/// What a context retires while waiting for the given lock.
///
/// `None` means the context is descheduled (sleeping in `futex_wait`).
/// The spin classes follow the `lockin` defaults: TAS spins globally on
/// the lock word; TTAS/TICKET/MCS/CLH spin locally with the paper's
/// `mfence` pausing; MUTEX sleeps almost immediately; MUTEXEE spins
/// locally (mfence) for its budget and is modeled as spinning, its
/// dominant wait mode under the short critical sections of a KV shard.
pub fn wait_state(lock: LockKind) -> CtxPowerState {
    match lock {
        LockKind::Tas => CtxPowerState::Active(ActivityClass::GlobalSpin),
        LockKind::Ttas | LockKind::Ticket | LockKind::Mcs | LockKind::Clh => {
            CtxPowerState::Active(ActivityClass::LocalSpinMbar)
        }
        LockKind::Mutexee => CtxPowerState::Active(ActivityClass::LocalSpinMbar),
        LockKind::Mutex => CtxPowerState::Descheduled,
    }
}

/// Models a load run on the paper's Xeon.
///
/// `threads` client contexts (capped at the machine's 40) each spend
/// `wait_frac` of the wall time blocked on shard locks, `idle_frac`
/// descheduled (open-loop pacing slack), and the rest doing application
/// work. Fractions are clamped to `[0, 1]` and to a unit sum, with work
/// taking the remainder.
pub fn estimate(
    lock: LockKind,
    threads: usize,
    wall: Duration,
    wait_frac: f64,
    idle_frac: f64,
    ops: u64,
) -> EnergyEstimate {
    estimate_at(lock, threads, wall, wait_frac, idle_frac, ops, None)
}

/// [`estimate`] at an explicit frequency cap.
///
/// `freq_khz` is the cap the host actually ran under (`None` = base):
/// every modeled core is pinned to that VF point, clamped into the
/// calibrated DVFS range, so modeled joules are priced at the *same*
/// frequency the measured ones were drawn at. The wall time already
/// reflects the capped host's real speed — only the power curve moves.
pub fn estimate_at(
    lock: LockKind,
    threads: usize,
    wall: Duration,
    wait_frac: f64,
    idle_frac: f64,
    ops: u64,
    freq_khz: Option<u64>,
) -> EnergyEstimate {
    let shape = MachineShape::xeon();
    let cfg = PowerConfig::xeon();
    let vf = match freq_khz {
        Some(khz) => VfPoint::new(khz.clamp(cfg.min_khz, cfg.base_khz)),
        None => VfPoint::new(cfg.base_khz),
    };
    let base_hz = cfg.base_khz as f64 * 1000.0;
    let total_cycles = (wall.as_secs_f64().max(1e-9) * base_hz) as u64;

    let wait = wait_frac.clamp(0.0, 1.0);
    let idle = idle_frac.clamp(0.0, 1.0 - wait);
    let work = 1.0 - wait - idle;

    let active_ctx = threads.min(shape.contexts());
    let mut model = PowerModel::new(cfg, shape);
    for core in 0..shape.cores() {
        model.set_core_vf(core, vf);
    }
    // Three piecewise-constant segments; their order is irrelevant to the
    // integral, only the durations matter.
    let segments = [
        (work, CtxPowerState::Active(ActivityClass::Work)),
        (wait, wait_state(lock)),
        (idle, CtxPowerState::Descheduled),
    ];
    let mut now = 0u64;
    for (frac, state) in segments {
        let cycles = (frac * total_cycles as f64) as u64;
        if cycles == 0 {
            continue;
        }
        for ctx in 0..active_ctx {
            model.set_ctx_activity(ctx, state);
        }
        now += cycles;
        model.advance(now);
    }
    // Account for any rounding remainder at the final state.
    if now < total_cycles {
        model.advance(total_cycles);
    }

    let energy_j = model.energy().total_j();
    let secs = wall.as_secs_f64().max(1e-9);
    EnergyEstimate {
        avg_power_w: energy_j / secs,
        energy_j,
        epo_uj: if ops > 0 { energy_j / ops as f64 * 1e6 } else { f64::NAN },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_sit_in_the_xeon_envelope() {
        for lock in LockKind::ALL {
            let e = estimate(lock, 16, Duration::from_millis(100), 0.3, 0.0, 10_000);
            assert!(
                e.avg_power_w > 27.0 && e.avg_power_w < 207.0,
                "{}: {} W",
                lock.label(),
                e.avg_power_w
            );
            assert!(e.energy_j > 0.0);
            assert!(e.epo_uj.is_finite() && e.epo_uj > 0.0);
        }
    }

    #[test]
    fn spinning_waiters_burn_more_than_sleeping_ones() {
        let wall = Duration::from_millis(100);
        let spin = estimate(LockKind::Ttas, 16, wall, 0.8, 0.0, 1_000);
        let sleep = estimate(LockKind::Mutex, 16, wall, 0.8, 0.0, 1_000);
        assert!(
            spin.avg_power_w > sleep.avg_power_w,
            "spin {} W <= sleep {} W",
            spin.avg_power_w,
            sleep.avg_power_w
        );
    }

    #[test]
    fn idle_time_lowers_power() {
        let wall = Duration::from_millis(100);
        let busy = estimate(LockKind::Mutexee, 8, wall, 0.1, 0.0, 1_000);
        let paced = estimate(LockKind::Mutexee, 8, wall, 0.1, 0.6, 1_000);
        assert!(paced.avg_power_w < busy.avg_power_w);
    }

    #[test]
    fn capped_frequency_lowers_modeled_power() {
        // The paper's DVFS observation: the same time split priced at the
        // minimum P-state draws less power than at base — and a cap is
        // clamped into the calibrated range, never extrapolated past it.
        let wall = Duration::from_millis(100);
        let base = estimate_at(LockKind::Ttas, 16, wall, 0.4, 0.0, 10_000, None);
        let capped = estimate_at(LockKind::Ttas, 16, wall, 0.4, 0.0, 10_000, Some(1_200_000));
        assert!(
            capped.avg_power_w < base.avg_power_w,
            "capped {} W >= base {} W",
            capped.avg_power_w,
            base.avg_power_w
        );
        let floor = estimate_at(LockKind::Ttas, 16, wall, 0.4, 0.0, 10_000, Some(1));
        assert_eq!(floor.avg_power_w, capped.avg_power_w, "below-range caps clamp to min");
        let ceil = estimate_at(LockKind::Ttas, 16, wall, 0.4, 0.0, 10_000, Some(u64::MAX));
        assert_eq!(ceil.avg_power_w, base.avg_power_w, "above-range caps clamp to base");
    }

    #[test]
    fn zero_ops_yields_nan_epo_not_a_panic() {
        let e = estimate(LockKind::Mutex, 4, Duration::from_millis(10), 0.0, 0.0, 0);
        assert!(e.epo_uj.is_nan());
        assert!(e.energy_j > 0.0);
    }
}
