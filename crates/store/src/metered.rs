//! Attaching a RAPL sampler to any KV service.
//!
//! [`PolyStore`](crate::PolyStore) itself knows nothing about energy
//! measurement; [`Metered`] pairs any [`KvService`] with a
//! [`RaplSampler`] so [`run_load_on`](crate::run_load_on) sees measured
//! energy through [`KvService::measured_energy`] without the service
//! changing. (The `poly-net` client instead learns the *server's*
//! measured energy over the wire, so TCP runs attribute joules to the
//! serving process — wrap the server's store, not the client.)

use poly_locks_sim::LockKind;
use poly_meter::{MeasuredReading, RaplSampler};

use crate::driver::{KvConnection, KvService, PipeOp, Reply, Submitted};
use crate::stats::StatsSnapshot;
use crate::WriteBatch;

/// A [`KvService`] with a RAPL sampler attached: every call delegates to
/// the inner service; [`KvService::measured_energy`] reads the sampler.
pub struct Metered<'m, S> {
    svc: &'m S,
    sampler: &'m RaplSampler,
}

impl<'m, S: KvService> Metered<'m, S> {
    /// Pairs `svc` with `sampler`.
    pub fn new(svc: &'m S, sampler: &'m RaplSampler) -> Self {
        Self { svc, sampler }
    }
}

/// Delegating session: forwards every op to the inner service's session.
pub struct MeteredConn<C>(C);

impl<C: KvConnection> KvConnection for MeteredConn<C> {
    fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        self.0.get(key)
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Option<Vec<u8>> {
        self.0.put(key, value)
    }

    fn remove(&mut self, key: u64) -> Option<Vec<u8>> {
        self.0.remove(key)
    }

    fn scan_count(&mut self) -> u64 {
        self.0.scan_count()
    }

    fn apply(&mut self, batch: &WriteBatch) {
        self.0.apply(batch)
    }

    // The pipelined surface must forward too, or metering a pipelined
    // backend would silently drop it back to depth 1 (the trait's
    // synchronous defaults).
    fn submit(&mut self, op: PipeOp) -> Submitted {
        self.0.submit(op)
    }

    fn drain(&mut self) -> Vec<Reply> {
        self.0.drain()
    }

    fn pipeline_depth(&self) -> usize {
        self.0.pipeline_depth()
    }
}

impl<'m, S: KvService> KvService for Metered<'m, S> {
    // Sessions borrow the *inner* service (`'m`), not the wrapper: the
    // wrapper only holds references, so its own borrow adds nothing.
    type Conn<'s>
        = MeteredConn<S::Conn<'m>>
    where
        Self: 's;

    fn connect(&self) -> Self::Conn<'_> {
        MeteredConn(self.svc.connect())
    }

    fn lock_kind(&self) -> LockKind {
        self.svc.lock_kind()
    }

    fn service_stats(&self) -> StatsSnapshot {
        self.svc.service_stats()
    }

    fn extra_threads_per_client(&self) -> usize {
        self.svc.extra_threads_per_client()
    }

    fn measured_energy(&self) -> Option<MeasuredReading> {
        Some(self.sampler.reading())
    }
}
