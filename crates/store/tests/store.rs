//! poly-store integration tests: cross-thread consistency, epoch
//! exclusion, and workload-sampler statistics.

use poly_locks_sim::LockKind;
use poly_store::{
    run_load, KvMix, LoadSpec, PolyStore, Rng64, StoreConfig, WriteBatch, ZipfSampler,
};

/// Thread count scaled to the host: this box may expose a single hardware
/// thread, where every contended handover costs a scheduler quantum, so
/// concurrency (not iteration count) is what must stay bounded.
fn host_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(2, 8)
}

/// Concurrent put/get smoke: writers own disjoint key ranges while a
/// reader thread continuously observes. Every observed value must be one
/// the owner actually wrote, and after the join the final value of every
/// key must be the owner's last write — across a sleeping, a spinning,
/// and a queue backend.
#[test]
fn concurrent_put_get_consistency() {
    let writers = host_threads();
    let keys_per_writer = 64u64;
    let rounds = 30u64;
    for lock in [LockKind::Mutexee, LockKind::Ttas, LockKind::Mcs] {
        let store = PolyStore::new(StoreConfig { shards: 8, lock, ..Default::default() });
        std::thread::scope(|s| {
            for w in 0..writers as u64 {
                let store = &store;
                s.spawn(move || {
                    for round in 1..=rounds {
                        for k in 0..keys_per_writer {
                            let key = w * keys_per_writer + k;
                            // Value encodes owner and round: verifiable.
                            store.put_u64(key, w * 1_000_000 + round);
                        }
                    }
                });
            }
            let store = &store;
            s.spawn(move || {
                let mut rng = Rng64::new(99);
                for _ in 0..(rounds * keys_per_writer) {
                    let key = rng.below(writers as u64 * keys_per_writer);
                    let owner = key / keys_per_writer;
                    if let Some(v) = store.get_u64(key) {
                        let (seen_owner, round) = (v / 1_000_000, v % 1_000_000);
                        assert_eq!(seen_owner, owner, "{}: foreign write leaked in", lock.label());
                        assert!(
                            (1..=rounds).contains(&round),
                            "{}: impossible round {round}",
                            lock.label()
                        );
                    }
                }
            });
        });
        // After the join: last write per key wins.
        for w in 0..writers as u64 {
            for k in 0..keys_per_writer {
                let key = w * keys_per_writer + k;
                assert_eq!(
                    store.get_u64(key),
                    Some(w * 1_000_000 + rounds),
                    "{}: key {key} lost its final write",
                    lock.label()
                );
            }
        }
        assert_eq!(store.len(), writers as u64 * keys_per_writer);
    }
}

/// A scan running concurrently with an epoch bump must observe either the
/// old or the new epoch — and the bump must wait for in-flight scans, so
/// the epoch can never advance mid-scan.
#[test]
fn epoch_bump_excludes_scans() {
    let store =
        PolyStore::new(StoreConfig { shards: 4, lock: LockKind::Mutexee, ..Default::default() });
    for k in 0..256 {
        store.put_u64(k, 1);
    }
    std::thread::scope(|s| {
        let bumper = s.spawn(|| {
            for _ in 0..20 {
                store.bump_epoch();
            }
        });
        for _ in 0..40 {
            let before = store.epoch();
            let seen = store.scan(|_, _| {});
            assert!(seen >= before, "epoch went backwards");
        }
        bumper.join().unwrap();
    });
    assert_eq!(store.epoch(), 20);
}

/// Zipf sampler sanity: rank frequencies must decrease (hot head), match
/// the analytic head mass, and collapse to uniform at skew 0.
#[test]
fn zipf_sampler_distribution() {
    let n = 64usize;
    let draws = 200_000u64;

    // Skewed: empirical head mass close to the analytic CDF.
    let z = ZipfSampler::new(n, 1.2);
    let mut rng = Rng64::new(12345);
    let mut counts = vec![0u64; n];
    for _ in 0..draws {
        counts[z.sample(&mut rng) as usize] += 1;
    }
    let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(1.2)).sum();
    let expect_rank0 = 1.0 / h; // ~0.36 for n=64, s=1.2
    let got_rank0 = counts[0] as f64 / draws as f64;
    assert!(
        (got_rank0 - expect_rank0).abs() < 0.01,
        "rank-0 mass {got_rank0:.3}, analytic {expect_rank0:.3}"
    );
    // Monotone non-increasing over the head (tail counts are tiny and noisy).
    for i in 0..8 {
        assert!(
            counts[i] >= counts[i + 1],
            "rank {i} ({}) < rank {} ({})",
            counts[i],
            i + 1,
            counts[i + 1]
        );
    }
    let top4: u64 = counts[..4].iter().sum();
    assert!(top4 as f64 / draws as f64 > 0.5, "skew 1.2 must concentrate the head");

    // Uniform: every rank within 20% of the expected share.
    let u = ZipfSampler::new(n, 0.0);
    let mut counts = vec![0u64; n];
    for _ in 0..draws {
        counts[u.sample(&mut rng) as usize] += 1;
    }
    let expect = draws as f64 / n as f64;
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64 - expect).abs() / expect < 0.2,
            "uniform rank {i} count {c} vs expected {expect}"
        );
    }
}

/// The full service surface in one pass: batched load, scans, epoch
/// maintenance and stats all running against one store.
#[test]
fn mixed_service_smoke() {
    let mix = KvMix::write_burst().with_shards(4);
    let store = PolyStore::new(StoreConfig {
        shards: mix.shards,
        lock: LockKind::Mutex,
        ..Default::default()
    });
    let threads = host_threads().min(3);
    let r = run_load(&store, &LoadSpec::saturating(mix, threads, 1_500, 2026));
    assert_eq!(r.ops, threads as u64 * 1_500);
    assert!(r.store_stats.batches > 0);
    assert!(r.energy.energy_j > 0.0);
    // Maintenance interleaves fine after the run.
    store.bump_epoch();
    let mut batch = WriteBatch::new();
    batch.put_u64(u64::MAX, 7);
    store.apply(&batch);
    assert_eq!(store.get_u64(u64::MAX), Some(7));
}
