//! Measured-energy integration: the open-loop driver over a [`Metered`]
//! service, against a fake powercap tree whose counters a mutator thread
//! advances (and wraps) while the load runs — the full RAPL path,
//! exercised on a host that has no RAPL.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use poly_locks_sim::LockKind;
use poly_meter::{EnergySource, FakeRapl, RaplSampler};
use poly_store::{run_load, run_load_on, KvMix, LoadSpec, Metered, PolyStore, StoreConfig};

fn host_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4)
}

#[test]
fn unmetered_runs_stay_model_only() {
    let mix = KvMix { keys: 2_048, ..KvMix::uniform() }.with_shards(4);
    let store = PolyStore::new(StoreConfig {
        shards: mix.shards,
        lock: LockKind::Mutexee,
        ..Default::default()
    });
    let r = run_load(&store, &LoadSpec::saturating(mix, 1, 500, 3));
    assert_eq!(r.energy_source, EnergySource::Modeled);
    assert!(r.measured.is_none());
    assert_eq!(r.measured_j(), None);
    assert_eq!(r.measured_uj_per_op(), None);
    assert!(r.energy.energy_j > 0.0, "modeled energy still reported");
}

/// The acceptance test of the measured path: a metered run must produce a
/// nonzero `measured_j` with the counter wrapping mid-run, while the
/// modeled fields keep working exactly as in an unmetered run.
#[test]
fn metered_run_reports_measured_joules_with_wraparound() {
    let fake = FakeRapl::new("store-measured");
    // Start near the wrap point so the mutator pushes the counter over
    // it during the measured interval.
    let start_uj = FakeRapl::RANGE_UJ - 40_000;
    fake.domain(0, "package-0", start_uj);
    fake.named_domain("intel-rapl:0:1", "dram", 0);
    let sampler = RaplSampler::probe_at(fake.root(), Duration::from_millis(2)).unwrap().unwrap();

    let mix = KvMix { keys: 2_048, ..KvMix::uniform() }.with_shards(4);
    let store = PolyStore::new(StoreConfig {
        shards: mix.shards,
        lock: LockKind::Mutexee,
        ..Default::default()
    });
    let svc = Metered::new(&store, &sampler);

    // Mutator: burns a steady 10 uJ per 500 us tick until told to stop,
    // like a host whose package draws power while the load runs.
    let stop = AtomicBool::new(false);
    let r = std::thread::scope(|scope| {
        scope.spawn(|| {
            while !stop.load(Ordering::SeqCst) {
                fake.advance(0, 10_000);
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        // Paced so the measured interval spans many mutator ticks (and
        // the wrap) even on a fast host: 3000 ops at 100k/s ≈ 30 ms.
        let spec = LoadSpec {
            rate_ops_s: Some(100_000),
            ..LoadSpec::saturating(mix, host_threads(), 3_000, 42)
        };
        let r = run_load_on(&svc, &spec);
        stop.store(true, Ordering::SeqCst);
        r
    });

    assert_eq!(r.energy_source, EnergySource::Rapl);
    let m = r.measured.expect("metered run carries a measured summary");
    assert_eq!(m.source, EnergySource::Rapl);
    assert!(m.package_j > 0.0, "measured package joules must be nonzero: {m:?}");
    assert!(m.samples >= 1);
    let measured_j = r.measured_j().expect("measured_j populated");
    assert!((measured_j - m.total_j()).abs() < 1e-12);
    assert!(r.measured_uj_per_op().expect("per-op joules") > 0.0);
    // The counter wrapped under the mutator; a wraparound bug would show
    // up as a near-RANGE_UJ (or negative-saturated) total.
    assert!(fake.energy(0) < start_uj, "test premise: the counter wrapped");
    assert!(
        measured_j < FakeRapl::RANGE_UJ as f64 * 1e-6 / 2.0,
        "wraparound mishandled: {measured_j} J"
    );
    // The modeled side is untouched by measurement.
    assert!(r.energy.avg_power_w > 27.0 && r.energy.avg_power_w < 207.0);
    assert_eq!(r.ops, host_threads() as u64 * 3_000);
    assert_eq!(r.request_latency.count(), r.ops);
}

/// Prefill burn lands outside the measured window: a service that only
/// consumes energy during prefill reports ~zero measured joules.
#[test]
fn prefill_energy_is_excluded_from_the_window() {
    let fake = FakeRapl::new("store-warmup");
    fake.domain(0, "package-0", 0);
    let sampler = RaplSampler::probe_at(fake.root(), Duration::from_secs(3600)).unwrap().unwrap();
    // Burn "warmup energy" before the run; nothing burns during it.
    fake.advance(0, 7_000_000);
    let mix = KvMix { keys: 512, ..KvMix::uniform() }.with_shards(2);
    let store = PolyStore::new(StoreConfig {
        shards: mix.shards,
        lock: LockKind::Mutex,
        ..Default::default()
    });
    let svc = Metered::new(&store, &sampler);
    let r = run_load_on(&svc, &LoadSpec::saturating(mix, 1, 200, 9));
    let m = r.measured.expect("metered");
    assert!(m.total_j() < 1e-9, "warmup joules leaked into the measured window: {:?}", r.measured);
}
