//! System-model behavior under lock substitution (the §6 experiment).

use poly_locks_sim::LockKind;
use poly_sim::{MachineConfig, RunSpec, SimBuilder, SimReport};
use poly_systems::{build_cowlist, PaperSystem};

fn run_system(sys: PaperSystem, kind: LockKind, duration: u64) -> SimReport {
    let mut b = SimBuilder::new(MachineConfig::xeon());
    sys.build(&mut b, kind);
    b.run(RunSpec { duration, warmup: duration / 10 })
}

#[test]
fn every_system_runs_with_every_lock() {
    // Smoke over the full 17 x 3 grid with short horizons; mutual exclusion
    // is enforced by the engine throughout.
    for sys in PaperSystem::paper_lineup() {
        for kind in [LockKind::Mutex, LockKind::Ticket, LockKind::Mutexee] {
            let r = run_system(sys, kind, 4_000_000);
            assert!(
                r.total_ops > 0,
                "{} {} with {} made no progress",
                sys.system_name(),
                sys.config_label(),
                kind.label()
            );
        }
    }
}

#[test]
fn hamsterdb_prefers_spinning_locks() {
    // Figure 13 HamsterDB: TICKET and MUTEXEE both beat MUTEX.
    let mutex = run_system(PaperSystem::HamsterDb(90), LockKind::Mutex, 40_000_000);
    let ticket = run_system(PaperSystem::HamsterDb(90), LockKind::Ticket, 40_000_000);
    let mutexee = run_system(PaperSystem::HamsterDb(90), LockKind::Mutexee, 40_000_000);
    assert!(
        ticket.throughput > 1.1 * mutex.throughput,
        "TICKET {:.0} vs MUTEX {:.0}",
        ticket.throughput,
        mutex.throughput
    );
    assert!(
        mutexee.throughput > 1.05 * mutex.throughput,
        "MUTEXEE {:.0} vs MUTEX {:.0}",
        mutexee.throughput,
        mutex.throughput
    );
}

#[test]
fn oversubscribed_sqlite_kills_ticket() {
    // Figure 13 SQLite 64 CON: a fair spinlock under oversubscription
    // collapses (paper: 0.25x), while MUTEXEE beats MUTEX.
    let mutex = run_system(PaperSystem::Sqlite(64), LockKind::Mutex, 60_000_000);
    let ticket = run_system(PaperSystem::Sqlite(64), LockKind::Ticket, 60_000_000);
    let mutexee = run_system(PaperSystem::Sqlite(64), LockKind::Mutexee, 60_000_000);
    assert!(
        ticket.throughput < 0.7 * mutex.throughput,
        "TICKET must collapse: {:.0} vs MUTEX {:.0}",
        ticket.throughput,
        mutex.throughput
    );
    assert!(
        mutexee.throughput > mutex.throughput,
        "MUTEXEE {:.0} vs MUTEX {:.0}",
        mutexee.throughput,
        mutex.throughput
    );
}

#[test]
fn sqlite_with_mutex_burns_kernel_time_on_futex_buckets() {
    // §6.1: with MUTEX, SQLite spends a large share of CPU in kernel
    // futex-bucket spinlocks; MUTEXEE cuts that drastically.
    let mutex = run_system(PaperSystem::Sqlite(64), LockKind::Mutex, 60_000_000);
    let mutexee = run_system(PaperSystem::Sqlite(64), LockKind::Mutexee, 60_000_000);
    // The paper's metric is time burned *spinning on the kernel bucket
    // lock* (40% of CPU with MUTEX vs 4% with MUTEXEE); normalize per op.
    let mutex_spin = mutex.futex.bucket_spin_cycles as f64 / mutex.total_ops as f64;
    let mutexee_spin = mutexee.futex.bucket_spin_cycles as f64 / mutexee.total_ops.max(1) as f64;
    assert!(
        mutex_spin > 2.0 * mutexee_spin,
        "MUTEX kernel-lock spin/op {mutex_spin:.0} vs MUTEXEE {mutexee_spin:.0}"
    );
    assert!(
        mutex.futex.kernel_work_cycles as f64 / mutex.total_ops as f64
            > 1.3 * (mutexee.futex.kernel_work_cycles as f64 / mutexee.total_ops.max(1) as f64),
        "MUTEX total kernel futex work per op must dominate"
    );
}

#[test]
fn mysql_is_insensitive_to_the_lock_algorithm_except_spinlocks() {
    // Figure 13 MySQL MEM: MUTEXEE ~ MUTEX (1.03x), TICKET collapses.
    let mutex = run_system(
        PaperSystem::MySql(poly_systems::MySqlVariant::Mem),
        LockKind::Mutex,
        40_000_000,
    );
    let mutexee = run_system(
        PaperSystem::MySql(poly_systems::MySqlVariant::Mem),
        LockKind::Mutexee,
        40_000_000,
    );
    let ticket = run_system(
        PaperSystem::MySql(poly_systems::MySqlVariant::Mem),
        LockKind::Ticket,
        40_000_000,
    );
    let ratio = mutexee.throughput / mutex.throughput;
    assert!(
        (0.85..1.35).contains(&ratio),
        "MySQL should be lock-insensitive, MUTEXEE/MUTEX = {ratio:.2}"
    );
    assert!(
        ticket.throughput < 0.5 * mutex.throughput,
        "TICKET must collapse on oversubscribed MySQL: {:.0} vs {:.0}",
        ticket.throughput,
        mutex.throughput
    );
}

#[test]
fn cowlist_spinlock_draws_more_power_but_higher_tpp() {
    // Figure 1: the TTAS version burns more power than MUTEX yet wins
    // energy efficiency through throughput.
    let run = |kind: LockKind| {
        let mut b = SimBuilder::new(MachineConfig::xeon());
        build_cowlist(&mut b, kind, 20);
        b.run(RunSpec { duration: 40_000_000, warmup: 4_000_000 })
    };
    let mutex = run(LockKind::Mutex);
    let spin = run(LockKind::Ttas);
    assert!(
        spin.avg_power.total_w > mutex.avg_power.total_w,
        "spinlock power {:.1} W vs mutex {:.1} W",
        spin.avg_power.total_w,
        mutex.avg_power.total_w
    );
    assert!(spin.tpp > mutex.tpp, "spinlock TPP {:.0} vs mutex {:.0}", spin.tpp, mutex.tpp);
}
