//! Models of the six systems evaluated in §6 (Table 3), plus the
//! `CopyOnWriteArrayList` stress of Figure 1.
//!
//! Each model reproduces the *lock-usage pattern* that determines how lock
//! algorithm choice affects the system: lock topology (one big lock, bucket
//! locks, rwlocks, write queues), critical-section length distributions,
//! operation mixes, oversubscription and I/O waits. Absolute service times
//! are calibrated in cycles at 2.8 GHz from the systems' published
//! per-operation costs; `EXPERIMENTS.md` records how the resulting ratios
//! compare to the paper's Figures 13-15.

use crate::script::{Action, SysShared, SysThread};
use crate::workloads::{pct, Zipf};
use poly_locks_sim::{Dist, LockKind, LockParams, RwMode, SimCondvar, SimLock, SimRwLock};
use poly_sim::{PinPolicy, SimBuilder};

/// One system/configuration cell of Figures 13-15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperSystem {
    /// HamsterDB embedded KV store; operand = write percentage (90/50/10).
    HamsterDb(u32),
    /// Kyoto Cabinet NoSQL store; operand = database variant.
    Kyoto(KyotoVariant),
    /// Memcached in-memory cache; operand = SET percentage (90/50/10).
    Memcached(u32),
    /// MySQL with LinkBench; operand = storage variant.
    MySql(MySqlVariant),
    /// RocksDB persistent store; operand = write percentage (90/50/10).
    RocksDb(u32),
    /// SQLite running TPC-C; operand = connection count (8/32/64).
    Sqlite(u32),
}

/// Kyoto Cabinet database flavors stressed by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KyotoVariant {
    /// In-memory cache database (shortest operations).
    Cache,
    /// On-memory hash database.
    HashDb,
    /// On-memory tree database (longest operations).
    BTree,
}

/// MySQL/LinkBench storage configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MySqlVariant {
    /// Fully in-memory dataset.
    Mem,
    /// 100 GB dataset on an SSD: every transaction performs blocking I/O.
    Ssd,
}

impl PaperSystem {
    /// The 17 experiment cells of Figures 13-14, in the paper's order.
    pub fn paper_lineup() -> Vec<PaperSystem> {
        vec![
            PaperSystem::HamsterDb(90),
            PaperSystem::HamsterDb(50),
            PaperSystem::HamsterDb(10),
            PaperSystem::Kyoto(KyotoVariant::Cache),
            PaperSystem::Kyoto(KyotoVariant::HashDb),
            PaperSystem::Kyoto(KyotoVariant::BTree),
            PaperSystem::Memcached(90),
            PaperSystem::Memcached(50),
            PaperSystem::Memcached(10),
            PaperSystem::MySql(MySqlVariant::Mem),
            PaperSystem::MySql(MySqlVariant::Ssd),
            PaperSystem::RocksDb(90),
            PaperSystem::RocksDb(50),
            PaperSystem::RocksDb(10),
            PaperSystem::Sqlite(8),
            PaperSystem::Sqlite(32),
            PaperSystem::Sqlite(64),
        ]
    }

    /// The system's name as in the figures.
    pub fn system_name(&self) -> &'static str {
        match self {
            PaperSystem::HamsterDb(_) => "HamsterDB",
            PaperSystem::Kyoto(_) => "Kyoto",
            PaperSystem::Memcached(_) => "Memcached",
            PaperSystem::MySql(_) => "MySQL",
            PaperSystem::RocksDb(_) => "RocksDB",
            PaperSystem::Sqlite(_) => "SQLite",
        }
    }

    /// The configuration label as in the figures.
    pub fn config_label(&self) -> String {
        match self {
            PaperSystem::HamsterDb(w) | PaperSystem::RocksDb(w) => match w {
                90 => "WT".into(),
                50 => "WT/RD".into(),
                _ => "RD".into(),
            },
            PaperSystem::Kyoto(v) => match v {
                KyotoVariant::Cache => "CACHE".into(),
                KyotoVariant::HashDb => "HT DB".into(),
                KyotoVariant::BTree => "B-TREE".into(),
            },
            PaperSystem::Memcached(s) => match s {
                90 => "SET".into(),
                50 => "SET/GET".into(),
                _ => "GET".into(),
            },
            PaperSystem::MySql(v) => match v {
                MySqlVariant::Mem => "MEM".into(),
                MySqlVariant::Ssd => "SSD".into(),
            },
            PaperSystem::Sqlite(c) => format!("{c} CON"),
        }
    }

    /// Whether the cell appears in the tail-latency Figure 15.
    pub fn in_tail_figure(&self) -> bool {
        matches!(
            self,
            PaperSystem::HamsterDb(_)
                | PaperSystem::Memcached(_)
                | PaperSystem::MySql(_)
                | PaperSystem::Sqlite(_)
        )
    }

    /// Number of worker threads (Table 3; MySQL and SQLite oversubscribe).
    pub fn threads(&self) -> usize {
        match self {
            PaperSystem::HamsterDb(_) | PaperSystem::Kyoto(_) => 4,
            PaperSystem::Memcached(_) => 8,
            PaperSystem::MySql(_) => 96,
            PaperSystem::RocksDb(_) => 12,
            PaperSystem::Sqlite(c) => *c as usize,
        }
    }

    /// Builds the system into a scenario with every pthread lock replaced
    /// by `kind` (the §6 methodology: nothing else changes).
    pub fn build(&self, b: &mut SimBuilder, kind: LockKind) {
        match *self {
            PaperSystem::HamsterDb(w) => build_hamsterdb(b, kind, w),
            PaperSystem::Kyoto(v) => build_kyoto(b, kind, v),
            PaperSystem::Memcached(s) => build_memcached(b, kind, s),
            PaperSystem::MySql(v) => build_mysql(b, kind, v),
            PaperSystem::RocksDb(w) => build_rocksdb(b, kind, w),
            PaperSystem::Sqlite(c) => build_sqlite(b, kind, c),
        }
    }
}

/// HamsterDB 2.1.7: an embedded KV store serializing every operation under
/// one big lock; B-tree writes hold it much longer than reads.
fn build_hamsterdb(b: &mut SimBuilder, kind: LockKind, write_pct: u32) {
    let threads = 4;
    let lock = SimLock::alloc(b, kind, threads, LockParams::default());
    for _ in 0..threads {
        let shared = SysShared { locks: vec![lock.clone()], ..Default::default() };
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            let write = pct(rng, write_pct);
            let cs = if write { Dist::Exp(8_000) } else { Dist::Exp(3_500) };
            vec![
                Action::Work(Dist::Exp(1_500)),
                Action::Lock(0),
                Action::Work(cs),
                Action::Unlock(0),
                Action::Work(Dist::Exp(1_000)),
            ]
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}

/// Kyoto Cabinet 1.2.76: a NoSQL store whose every method funnels through
/// one process-wide `pthread_rwlock`; variants differ in operation length.
fn build_kyoto(b: &mut SimBuilder, kind: LockKind, variant: KyotoVariant) {
    let threads = 4;
    let (cs_w, cs_r) = match variant {
        KyotoVariant::Cache => (3_000, 1_500),
        KyotoVariant::HashDb => (5_000, 2_500),
        KyotoVariant::BTree => (9_000, 4_500),
    };
    let rw = SimRwLock::alloc(b, kind, threads, LockParams::default());
    for _ in 0..threads {
        let shared = SysShared { rwlocks: vec![rw.clone()], ..Default::default() };
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            let write = pct(rng, 30);
            let (mode, cs) = if write {
                (RwMode::Write, Dist::Exp(cs_w))
            } else {
                (RwMode::Read, Dist::Exp(cs_r))
            };
            vec![
                Action::Work(Dist::Exp(1_200)),
                Action::RwAcquire(0, mode),
                Action::Work(cs),
                Action::RwRelease(0, mode),
            ]
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}

/// Memcached 1.4.22 under a Twitter-like workload: zipf-hot bucket locks
/// plus the global LRU/cache lock that every SET (and the occasional GET
/// bump) takes.
fn build_memcached(b: &mut SimBuilder, kind: LockKind, set_pct: u32) {
    let threads = 8;
    let buckets = 16;
    let mut locks = vec![SimLock::alloc(b, kind, threads, LockParams::default())]; // LRU
    for _ in 0..buckets {
        locks.push(SimLock::alloc(b, kind, threads, LockParams::default()));
    }
    let zipf = Zipf::new(buckets, 1.0);
    for _ in 0..threads {
        let shared = SysShared { locks: locks.clone(), ..Default::default() };
        let zipf = zipf.clone();
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            let bucket = 1 + zipf.sample(rng);
            let mut script = vec![Action::Work(Dist::Exp(1_500))]; // parse + hash
            if pct(rng, set_pct) {
                // SET: item write under the bucket lock, then LRU insert.
                script.extend([
                    Action::Lock(bucket),
                    Action::Work(Dist::Exp(1_200)),
                    Action::Unlock(bucket),
                    Action::Lock(0),
                    Action::Work(Dist::Exp(1_800)),
                    Action::Unlock(0),
                ]);
            } else {
                // GET: bucket lookup; 10% of hits bump the LRU.
                script.extend([
                    Action::Lock(bucket),
                    Action::Work(Dist::Exp(800)),
                    Action::Unlock(bucket),
                ]);
                if pct(rng, 10) {
                    script.extend([
                        Action::Lock(0),
                        Action::Work(Dist::Exp(600)),
                        Action::Unlock(0),
                    ]);
                }
            }
            script.push(Action::Io(Dist::Exp(5_000))); // network wait
            script
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}

/// MySQL 5.6 running LinkBench: heavily oversubscribed connection threads,
/// most synchronization in custom latches with short sections, transactions
/// dominated by work (MEM) or by SSD I/O (SSD).
fn build_mysql(b: &mut SimBuilder, kind: LockKind, variant: MySqlVariant) {
    let threads = 96;
    let latches = 64;
    let mut locks = vec![SimLock::alloc(b, kind, threads, LockParams::default())]; // binlog
    for _ in 0..latches {
        locks.push(SimLock::alloc(b, kind, threads, LockParams::default()));
    }
    let zipf = Zipf::new(latches, 0.6);
    for _ in 0..threads {
        let shared = SysShared { locks: locks.clone(), ..Default::default() };
        let zipf = zipf.clone();
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            let mut script = vec![Action::Work(Dist::Exp(15_000))]; // executor work
            for _ in 0..6 {
                let latch = 1 + zipf.sample(rng);
                script.extend([
                    Action::Lock(latch),
                    Action::Work(Dist::Exp(1_200)),
                    Action::Unlock(latch),
                    Action::Work(Dist::Exp(2_000)),
                ]);
            }
            if pct(rng, 30) {
                script.extend([Action::Lock(0), Action::Work(Dist::Exp(2_500)), Action::Unlock(0)]);
            }
            if variant == MySqlVariant::Ssd {
                script.push(Action::Io(Dist::Exp(280_000))); // ~100 us SSD read
            }
            script.push(Action::Work(Dist::Exp(4_000)));
            script
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::Unpinned);
    }
}

/// RocksDB 3.3.0 in-memory: writers funnel through the write-queue mutex
/// and a condition variable (group commit); reads barely touch locks.
fn build_rocksdb(b: &mut SimBuilder, kind: LockKind, write_pct: u32) {
    let threads = 12;
    let queue = SimLock::alloc(b, kind, threads, LockParams::default());
    let cv = SimCondvar::alloc(b);
    for _ in 0..threads {
        let shared =
            SysShared { locks: vec![queue.clone()], conds: vec![cv], ..Default::default() };
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            if pct(rng, write_pct) {
                // Writer: enqueue under the mutex; non-leaders wait on the
                // condvar until the leader's batch commits.
                let mut script = vec![
                    Action::Work(Dist::Exp(5_000)), // memtable prep
                    Action::Lock(0),
                    Action::Work(Dist::Exp(1_000)),
                ];
                if pct(rng, 15) {
                    script.push(Action::CondWait(0, 0));
                }
                script.extend([
                    Action::Unlock(0),
                    Action::CondBroadcast(0),
                    Action::Work(Dist::Exp(1_500)),
                ]);
                script
            } else {
                // Reader: version lookup is lock-free; rare superversion ref.
                let mut script = vec![Action::Work(Dist::Exp(4_000))];
                if pct(rng, 15) {
                    script.extend([
                        Action::Lock(0),
                        Action::Work(Dist::Exp(400)),
                        Action::Unlock(0),
                    ]);
                }
                script
            }
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}

/// SQLite 3.8.5 running TPC-C: every transaction makes *multiple* accesses
/// to shared data, each guarded by the database lock (the paper stresses
/// that transaction latencies are tens of ms while individual lock sections
/// are far shorter). Connections are CPU-bound server threads; at 64
/// connections the 40-context machine is oversubscribed.
fn build_sqlite(b: &mut SimBuilder, kind: LockKind, connections: u32) {
    let threads = connections as usize;
    let lock = SimLock::alloc(b, kind, threads, LockParams::default());
    for _ in 0..threads {
        let shared = SysShared { locks: vec![lock.clone()], ..Default::default() };
        let gen = Box::new(move |_rng: &mut rand::rngs::SmallRng| {
            let mut script = vec![Action::Work(Dist::Exp(8_000))]; // parse + plan
            for _ in 0..8 {
                script.extend([
                    Action::Lock(0),
                    Action::Work(Dist::Exp(4_000)), // one shared-data access
                    Action::Unlock(0),
                    Action::Work(Dist::Exp(2_000)), // private work between
                ]);
            }
            script.push(Action::Work(Dist::Exp(3_000))); // commit bookkeeping
            script
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::Unpinned);
    }
}

/// The Figure 1 microbenchmark: a `CopyOnWriteArrayList` stress where
/// writers copy the backing array under one lock (memory-intensive) and
/// readers traverse lock-free.
pub fn build_cowlist(b: &mut SimBuilder, kind: LockKind, threads: usize) {
    let lock = SimLock::alloc(b, kind, threads, LockParams::default());
    for _ in 0..threads {
        let shared = SysShared { locks: vec![lock.clone()], ..Default::default() };
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            if pct(rng, 50) {
                vec![
                    Action::Lock(0),
                    Action::MemWork(Dist::Exp(4_000)), // copy the array
                    Action::Unlock(0),
                    Action::Work(Dist::Exp(500)),
                ]
            } else {
                vec![Action::Work(Dist::Exp(1_500))] // lock-free traversal
            }
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_the_17_paper_cells() {
        let lineup = PaperSystem::paper_lineup();
        assert_eq!(lineup.len(), 17);
        assert_eq!(lineup.iter().filter(|s| s.in_tail_figure()).count(), 11);
        // Labels are unique within a system.
        for s in &lineup {
            assert!(!s.config_label().is_empty());
            assert!(!s.system_name().is_empty());
        }
    }

    #[test]
    fn thread_counts_follow_table_3() {
        assert_eq!(PaperSystem::HamsterDb(90).threads(), 4);
        assert_eq!(PaperSystem::Memcached(50).threads(), 8);
        assert_eq!(PaperSystem::RocksDb(10).threads(), 12);
        assert_eq!(PaperSystem::Sqlite(64).threads(), 64);
        assert!(PaperSystem::MySql(MySqlVariant::Mem).threads() > 40, "oversubscribed");
    }
}
