//! Workload models of the six systems evaluated in "Unlocking Energy" §6.
//!
//! The paper improves Memcached, MySQL, SQLite, RocksDB, HamsterDB and
//! Kyoto Cabinet by *only* swapping their pthread locks (mutexes, rwlocks,
//! and the mutexes under condvars) for TICKET or MUTEXEE. This crate
//! rebuilds each system's lock-usage skeleton on the simulator — lock
//! topology, critical-section lengths, operation mixes, oversubscription,
//! I/O waits — with the lock algorithm as the only knob, which is exactly
//! the experiment of Figures 13-15.
//!
//! # Examples
//!
//! ```
//! use poly_locks_sim::LockKind;
//! use poly_sim::{MachineConfig, RunSpec, SimBuilder};
//! use poly_systems::PaperSystem;
//!
//! let mut b = SimBuilder::new(MachineConfig::xeon());
//! PaperSystem::HamsterDb(90).build(&mut b, LockKind::Mutexee);
//! let report = b.run(RunSpec { duration: 3_000_000, warmup: 300_000 });
//! assert!(report.total_ops > 0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod models;
mod script;
mod workloads;

pub use models::{build_cowlist, KyotoVariant, MySqlVariant, PaperSystem};
pub use script::{Action, OpGenerator, SysShared, SysThread};
pub use workloads::{pct, Zipf};
