//! Workload generators: skewed key popularity and operation mixes.

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipf-distributed sampler over `0..n` (precomputed CDF).
///
/// Used for the Twitter-like Memcached workload (a few hot keys absorb most
/// requests) and LinkBench-like node popularity.
///
/// # Examples
///
/// ```
/// use poly_systems::Zipf;
/// use rand::SeedableRng;
/// let z = Zipf::new(16, 1.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let x = z.sample(&mut rng);
/// assert!(x < 16);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew `s` (`s = 0` is uniform;
    /// `s = 1` is the classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        self.sample_unit(rng.random())
    }

    /// Maps one uniform draw `u` in `[0, 1)` to an index — the inverse
    /// CDF, usable with any randomness source (poly-store's native driver
    /// brings its own RNG).
    pub fn sample_unit(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Draws `true` with probability `pct`%.
pub fn pct(rng: &mut SmallRng, pct: u32) -> bool {
    rng.random_range(0..100) < pct
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_towards_small_indices() {
        let z = Zipf::new(64, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = vec![0u32; 64];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        // Rank 1 absorbs roughly 1/H(64) ~ 21% of the mass.
        let share = counts[0] as f64 / 20_000.0;
        assert!((0.15..0.30).contains(&share), "head share {share}");
    }

    #[test]
    fn zero_skew_is_uniform() {
        let z = Zipf::new(8, 0.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = vec![0u32; 8];
        for _ in 0..16_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "uniform bucket off: {counts:?}");
        }
    }

    #[test]
    fn pct_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!pct(&mut rng, 0));
        assert!(pct(&mut rng, 100));
    }
}
