//! A small action-script interpreter for system workload models.
//!
//! Each of the six modeled systems expresses one *logical operation* (a
//! query, a transaction, a cache request) as a sequence of [`Action`]s —
//! compute, I/O, and synchronization steps over shared locks, rwlocks and
//! condition variables. [`SysThread`] interprets those sequences on the
//! simulator, draws a fresh sequence from the system's generator after each
//! completed operation, and does the measurement bookkeeping (ops,
//! acquisition latencies, handover types) uniformly for every system.

use poly_locks_sim::{
    AcqSm, CondSm, Dist, RelSm, RwAcqSm, RwMode, RwRelSm, SimCondvar, SimLock, SimRwLock, Step,
};
use poly_sim::{Op, OpResult, Program, ThreadRt};
use rand::rngs::SmallRng;

/// One step of a logical operation.
#[derive(Debug, Clone, Copy)]
pub enum Action {
    /// Compute for a sampled duration.
    Work(Dist),
    /// Memory-intensive compute (streaming copies; draws DRAM power).
    MemWork(Dist),
    /// Blocking I/O (descheduled) for a sampled duration.
    Io(Dist),
    /// Acquire mutex `locks[i]`.
    Lock(usize),
    /// Release mutex `locks[i]`.
    Unlock(usize),
    /// Acquire rwlock `rwlocks[i]` in the given mode.
    RwAcquire(usize, RwMode),
    /// Release rwlock `rwlocks[i]` in the given mode.
    RwRelease(usize, RwMode),
    /// Wait on condvar `conds[i]` using mutex `locks[j]` (must be held;
    /// still held afterwards).
    CondWait(usize, usize),
    /// Signal condvar `conds[i]` (wake one).
    CondSignal(usize),
    /// Broadcast condvar `conds[i]` (wake all).
    CondBroadcast(usize),
}

/// Shared synchronization objects of one modeled system.
#[derive(Clone, Default)]
pub struct SysShared {
    /// Mutexes, indexed by [`Action::Lock`].
    pub locks: Vec<SimLock>,
    /// Reader-writer locks.
    pub rwlocks: Vec<SimRwLock>,
    /// Condition variables.
    pub conds: Vec<SimCondvar>,
}

/// Generates the action sequence of the next logical operation.
pub type OpGenerator = Box<dyn FnMut(&mut SmallRng) -> Vec<Action>>;

enum Sub {
    None,
    Acq(AcqSm, usize),
    Rel(RelSm),
    RwAcq(RwAcqSm, usize, RwMode),
    RwRel(RwRelSm),
    CondWait(CondSm, usize),
    CondSig(CondSm),
}

/// A system workload thread: interprets generated action scripts.
pub struct SysThread {
    shared: SysShared,
    generate: OpGenerator,
    script: Vec<Action>,
    idx: usize,
    sub: Sub,
    acq_started: u64,
}

impl SysThread {
    /// Creates a thread over the system's shared objects.
    pub fn new(shared: SysShared, generate: OpGenerator) -> Self {
        Self { shared, generate, script: Vec::new(), idx: 0, sub: Sub::None, acq_started: 0 }
    }

    fn record_acquire(rt: &mut ThreadRt<'_>, started: u64, h: poly_locks_sim::Handover) {
        rt.counters.acquires += 1;
        rt.counters.acquire_latency.record(rt.now - started);
        match h {
            poly_locks_sim::Handover::Futex => rt.counters.futex_handovers += 1,
            _ => rt.counters.spin_handovers += 1,
        }
    }
}

impl Program for SysThread {
    fn resume(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Op {
        let mut last = last;
        loop {
            // Drive any sub-machine first.
            match &mut self.sub {
                Sub::None => {}
                Sub::Acq(sm, li) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Acquired(h) => {
                        let key = self.shared.locks[*li].key();
                        Self::record_acquire(rt, self.acq_started, h);
                        rt.enter_cs(key);
                        self.sub = Sub::None;
                    }
                    Step::Released => unreachable!(),
                },
                Sub::Rel(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Released => self.sub = Sub::None,
                    Step::Acquired(_) => unreachable!(),
                },
                Sub::RwAcq(sm, ri, mode) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Acquired(h) => {
                        let (ri, mode) = (*ri, *mode);
                        Self::record_acquire(rt, self.acq_started, h);
                        if mode == RwMode::Write {
                            rt.enter_cs(self.shared.rwlocks[ri].key());
                        }
                        self.sub = Sub::None;
                    }
                    Step::Released => unreachable!(),
                },
                Sub::RwRel(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Released => self.sub = Sub::None,
                    Step::Acquired(_) => unreachable!(),
                },
                Sub::CondWait(sm, li) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Acquired(_) => {
                        // The mutex is held again: re-enter its section.
                        let key = self.shared.locks[*li].key();
                        rt.enter_cs(key);
                        self.sub = Sub::None;
                    }
                    Step::Released => unreachable!("cond wait ends holding the lock"),
                },
                Sub::CondSig(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Released => self.sub = Sub::None,
                    Step::Acquired(_) => unreachable!("signal does not acquire"),
                },
            }
            // Fetch the next action.
            if self.idx >= self.script.len() {
                if !self.script.is_empty() {
                    rt.counters.ops += 1;
                }
                self.script = (self.generate)(rt.rng);
                assert!(!self.script.is_empty(), "operation scripts cannot be empty");
                self.idx = 0;
            }
            let action = self.script[self.idx];
            self.idx += 1;
            match action {
                Action::Work(d) => return Op::Work(d.sample(rt.rng).max(1)),
                Action::MemWork(d) => return Op::MemWork(d.sample(rt.rng).max(1)),
                Action::Io(d) => return Op::SleepFor(d.sample(rt.rng).max(1)),
                Action::Lock(i) => {
                    self.acq_started = rt.now;
                    self.sub = Sub::Acq(self.shared.locks[i].begin_acquire(rt.tid), i);
                    last = OpResult::Started;
                }
                Action::Unlock(i) => {
                    rt.exit_cs(self.shared.locks[i].key());
                    self.sub = Sub::Rel(self.shared.locks[i].begin_release(rt.tid));
                    last = OpResult::Started;
                }
                Action::RwAcquire(i, mode) => {
                    self.acq_started = rt.now;
                    self.sub =
                        Sub::RwAcq(self.shared.rwlocks[i].begin_acquire(rt.tid, mode), i, mode);
                    last = OpResult::Started;
                }
                Action::RwRelease(i, mode) => {
                    if mode == RwMode::Write {
                        rt.exit_cs(self.shared.rwlocks[i].key());
                    }
                    self.sub = Sub::RwRel(self.shared.rwlocks[i].begin_release(rt.tid, mode));
                    last = OpResult::Started;
                }
                Action::CondWait(ci, li) => {
                    // The interpreter leaves/re-enters the CS around the wait.
                    rt.exit_cs(self.shared.locks[li].key());
                    self.sub = Sub::CondWait(
                        self.shared.conds[ci].begin_wait(&self.shared.locks[li], rt.tid),
                        li,
                    );
                    last = OpResult::Started;
                }
                Action::CondSignal(ci) => {
                    self.sub = Sub::CondSig(self.shared.conds[ci].begin_signal());
                    last = OpResult::Started;
                }
                Action::CondBroadcast(ci) => {
                    self.sub = Sub::CondSig(self.shared.conds[ci].begin_broadcast());
                    last = OpResult::Started;
                }
            }
        }
    }
}
