//! The pull-based metric registry: named families of counters, gauges,
//! and histograms, each series backed by a collector closure.
//!
//! Nothing here is push-based or sampled: a registered series holds a
//! `Fn() -> Sample` closure reading the *same* atomics the subsystem's
//! own snapshot path reads (`StatsSnapshot`, `NetStatsSnapshot`,
//! `MeasuredReading`), so a scrape at quiesce telescopes exactly to the
//! native stats — there is no second accounting that could drift.

use std::sync::Mutex;

/// What a metric family is, for the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing.
    Counter,
    /// Goes up and down; the latest value wins.
    Gauge,
    /// Log-scaled bucket counts (the workspace's `HIST_BUCKETS` layout),
    /// rendered as cumulative Prometheus buckets.
    Histogram,
}

impl MetricKind {
    /// The exposition-format type name.
    pub const fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One collected value.
#[derive(Debug, Clone, PartialEq)]
pub enum Sample {
    /// An integer counter or gauge reading.
    U64(u64),
    /// A float gauge (or float-valued counter, e.g. joules).
    F64(f64),
    /// Per-bucket counts in the workspace's log-histogram layout:
    /// bucket 0 holds only the sample `0`, bucket `i >= 1` holds
    /// `[2^(i-1), 2^i)`.
    Hist(Vec<u64>),
}

type Collector = Box<dyn Fn() -> Sample + Send + Sync>;

struct Series {
    labels: Vec<(String, String)>,
    collect: Collector,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A collected point-in-time copy of one family, for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name (`store_gets_total`, ...).
    pub name: String,
    /// The `# HELP` line body.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Every registered series, labels sorted, series sorted by labels.
    pub series: Vec<SeriesSnapshot>,
}

/// One series of a [`MetricSnapshot`]: its label set and collected value.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// `(name, value)` label pairs, sorted by name.
    pub labels: Vec<(String, String)>,
    /// The collected value.
    pub value: Sample,
}

/// The workspace-wide registry every subsystem registers into.
///
/// Registration order does not matter: snapshots sort families by name
/// and series by label set, so two scrapes of the same registry render
/// identically (deterministic ordering is part of the exposition
/// contract — diffs of consecutive scrapes must only show value churn).
#[derive(Default)]
pub struct MetricRegistry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fams = self.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f.debug_struct("MetricRegistry").field("families", &fams.len()).finish()
    }
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        collect: Collector,
    ) {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        let mut fams = self.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let series = Series { labels, collect };
        match fams.iter_mut().find(|f| f.name == name) {
            // Same family, new label set (e.g. one net_* family per
            // server architecture): the first registration's help/kind
            // stand.
            Some(f) => f.series.push(series),
            None => fams.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                series: vec![series],
            }),
        }
    }

    /// Registers an integer counter series.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        collect: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(
            name,
            help,
            MetricKind::Counter,
            labels,
            Box::new(move || Sample::U64(collect())),
        );
    }

    /// Registers a float-valued counter series (cumulative joules).
    pub fn register_counter_f64(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        collect: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register(
            name,
            help,
            MetricKind::Counter,
            labels,
            Box::new(move || Sample::F64(collect())),
        );
    }

    /// Registers an integer gauge series.
    pub fn register_gauge_u64(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        collect: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(
            name,
            help,
            MetricKind::Gauge,
            labels,
            Box::new(move || Sample::U64(collect())),
        );
    }

    /// Registers a float gauge series.
    pub fn register_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        collect: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register(
            name,
            help,
            MetricKind::Gauge,
            labels,
            Box::new(move || Sample::F64(collect())),
        );
    }

    /// Registers a histogram series; the closure returns per-bucket
    /// counts in the workspace's log-histogram layout (see
    /// [`Sample::Hist`]).
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        collect: impl Fn() -> Vec<u64> + Send + Sync + 'static,
    ) {
        self.register(
            name,
            help,
            MetricKind::Histogram,
            labels,
            Box::new(move || Sample::Hist(collect())),
        );
    }

    /// Collects every series now, families sorted by name and series by
    /// label set — the deterministic order both renderers consume.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let fams = self.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out: Vec<MetricSnapshot> = fams
            .iter()
            .map(|f| {
                let mut series: Vec<SeriesSnapshot> = f
                    .series
                    .iter()
                    .map(|s| SeriesSnapshot { labels: s.labels.clone(), value: (s.collect)() })
                    .collect();
                series.sort_by(|a, b| a.labels.cmp(&b.labels));
                MetricSnapshot { name: f.name.clone(), help: f.help.clone(), kind: f.kind, series }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn snapshot_reads_live_values_through_the_closure() {
        let reg = MetricRegistry::new();
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        reg.register_counter("ops_total", "ops", &[], move || n2.load(Ordering::Relaxed));
        assert_eq!(reg.snapshot()[0].series[0].value, Sample::U64(0));
        n.store(42, Ordering::Relaxed);
        assert_eq!(reg.snapshot()[0].series[0].value, Sample::U64(42));
    }

    #[test]
    fn families_sort_by_name_and_series_by_labels() {
        let reg = MetricRegistry::new();
        reg.register_counter("zz_total", "z", &[], || 1);
        reg.register_counter("aa_total", "a", &[("server", "threads")], || 2);
        reg.register_counter(
            "aa_total",
            "ignored (first registration wins)",
            &[("server", "epoll")],
            || 3,
        );
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2, "same-name registrations join one family");
        assert_eq!(snap[0].name, "aa_total");
        assert_eq!(snap[0].help, "a");
        assert_eq!(snap[0].series.len(), 2);
        assert_eq!(snap[0].series[0].labels, [("server".into(), "epoll".into())]);
        assert_eq!(snap[0].series[1].labels, [("server".into(), "threads".into())]);
        assert_eq!(snap[1].name, "zz_total");
        // Deterministic across scrapes: same order every time.
        assert_eq!(reg.snapshot(), snap);
    }

    #[test]
    fn label_pairs_sort_within_a_series() {
        let reg = MetricRegistry::new();
        reg.register_gauge_u64("g", "g", &[("zeta", "1"), ("alpha", "2")], || 0);
        let labels = &reg.snapshot()[0].series[0].labels;
        assert_eq!(labels[0].0, "alpha");
        assert_eq!(labels[1].0, "zeta");
    }
}
