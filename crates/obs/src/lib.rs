//! `poly-obs` — the observability subsystem of the "Unlocking Energy"
//! reproduction.
//!
//! The paper's argument is built on *measured* signals evaluated
//! continuously; this crate is the always-on sensor surface that makes
//! a running `store serve` scrapeable by standard tooling, with no
//! crates.io dependencies (a leaf like `poly-meter`):
//!
//! * [`MetricRegistry`] — a pull-based registry of counter/gauge/
//!   histogram families with label sets. Series are collector closures
//!   over the *same* atomics the native stats snapshots read, so a
//!   scrape at quiesce telescopes exactly to `StatsSnapshot` — one
//!   accounting, two views;
//! * [`render_prometheus`] / [`render_vars`] — the text exposition
//!   (format v0.0.4, correct label escaping, cumulative buckets from
//!   the workspace's log-histogram layout) and a JSON dump;
//! * [`MetricsServer`] — a tiny blocking HTTP/1.0 sidecar serving
//!   `GET /metrics`, `/healthz` (readiness), and `/vars`; [`http_get`]
//!   is its client half;
//! * [`Journal`] / [`journal()`] — a bounded ring of leveled structured
//!   events ([`Event`]: monotonic seq, static kind, key/value fields)
//!   with an optional JSONL sink. The process-wide [`journal()`]
//!   singleton lets deep layers (the CLOCK hand, the cap guard's drop)
//!   emit without handle threading; the `EVENTS` wire opcode and
//!   `store events` tail it remotely.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use poly_obs::{journal, Level, MetricRegistry, MetricsServer, http_get};
//!
//! let reg = Arc::new(MetricRegistry::new());
//! reg.register_counter("demo_ops_total", "Ops served.", &[], || 12);
//! let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&reg), || true).unwrap();
//! let (code, body) = http_get(&server.local_addr(), "/metrics").unwrap();
//! assert_eq!(code, 200);
//! assert!(body.contains("demo_ops_total 12"));
//!
//! journal().emit(Level::Info, "demo_event", &[("answer", "42".into())]);
//! assert!(journal().tail(0, 16).iter().any(|e| e.kind == "demo_event"));
//! ```

#![deny(missing_docs)]

mod expo;
mod http;
mod journal;
mod registry;

pub use expo::{render_prometheus, render_vars};
pub use http::{http_get, MetricsServer};
pub use journal::{journal, Event, Journal, Level, JOURNAL_CAPACITY};
pub use registry::{MetricKind, MetricRegistry, MetricSnapshot, Sample, SeriesSnapshot};
