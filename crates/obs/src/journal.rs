//! The structured event journal: a bounded ring of leveled events with
//! monotonic sequence numbers, a process-wide singleton, and an
//! optional JSONL sink.
//!
//! Counters say *how much*; events say *what happened*: an eviction
//! sweep, a frequency cap applied or restored, a connection refused at
//! capacity. Emission is one atomic sequence claim plus one per-slot
//! mutex (never contended unless two emitters land on the same slot a
//! full ring apart), so deep layers — the CLOCK hand, the cap guard's
//! drop path — can emit without threading a handle through every
//! constructor: they call [`journal()`], the process singleton.
//!
//! Readers [`tail`](Journal::tail) from a sequence number; the `EVENTS`
//! wire opcode and `store events` are thin shells over that.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Capacity of the process-wide journal ring: events older than the
/// last this-many are overwritten.
pub const JOURNAL_CAPACITY: usize = 1024;

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Normal operation worth recording (a cap applied, a sweep ran).
    Info,
    /// Degraded but serving (a connection refused, a cap request failed).
    Warn,
    /// Something is broken.
    Error,
}

impl Level {
    /// Stable lowercase label (JSONL and display).
    pub const fn label(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Stable wire code.
    pub const fn code(self) -> u8 {
        match self {
            Level::Info => 0,
            Level::Warn => 1,
            Level::Error => 2,
        }
    }

    /// Decodes a wire code.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Level::Info),
            1 => Some(Level::Warn),
            2 => Some(Level::Error),
            _ => None,
        }
    }

    /// Parses a label (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// One journal entry: a static kind plus free-form key/value fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic per-process sequence number (assignment order).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at emission.
    pub ts_ms: u64,
    /// Severity.
    pub level: Level,
    /// Static event name (`cap_apply`, `eviction_sweep`, ...).
    pub kind: String,
    /// Key/value detail pairs, in emission order.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// The event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| {
                format!("\"{}\":\"{}\"", crate::expo::json_escape(k), crate::expo::json_escape(v))
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"seq\":{},\"ts_ms\":{},\"level\":\"{}\",\"kind\":\"{}\",\"fields\":{{{fields}}}}}",
            self.seq,
            self.ts_ms,
            self.level.label(),
            crate::expo::json_escape(&self.kind),
        )
    }
}

/// A bounded ring of [`Event`]s with an optional JSONL sink.
pub struct Journal {
    seq: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.slots.len())
            .field("next_seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Journal {
    /// A fresh journal holding at most `capacity` events (floored at 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            seq: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            sink: Mutex::new(None),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The sequence number the *next* emitted event will take (equals
    /// the number of events emitted so far).
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Installs a JSONL sink: every subsequent event is appended to `w`
    /// as one line. Replaces any prior sink.
    pub fn set_sink(&self, w: Box<dyn Write + Send>) {
        *self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(w);
    }

    /// Removes the sink (flushing it), e.g. before process exit.
    pub fn take_sink(&self) {
        let mut sink = self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(w) = sink.as_mut() {
            let _ = w.flush();
        }
        *sink = None;
    }

    /// Emits one event, returning its sequence number.
    pub fn emit(&self, level: Level, kind: &str, fields: &[(&str, String)]) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ts_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        let event = Event {
            seq,
            ts_ms,
            level,
            kind: kind.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        {
            let mut sink = self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(w) = sink.as_mut() {
                let _ = writeln!(w, "{}", event.to_jsonl());
            }
        }
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // A slower emitter a full ring behind must never clobber a newer
        // event that already claimed this slot.
        if guard.as_ref().is_none_or(|prior| prior.seq < seq) {
            *guard = Some(event);
        }
        seq
    }

    /// Events still resident with `seq >= since_seq`, oldest first, at
    /// most `max`. A tailing client tracks the last seq it saw and polls
    /// with `last + 1`.
    pub fn tail(&self, since_seq: u64, max: usize) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone()
                    .filter(|e| e.seq >= since_seq)
            })
            .collect();
        out.sort_by_key(|e| e.seq);
        out.truncate(max);
        out
    }
}

static JOURNAL: OnceLock<Journal> = OnceLock::new();

/// The process-wide journal every subsystem emits into.
pub fn journal() -> &'static Journal {
    JOURNAL.get_or_init(|| Journal::with_capacity(JOURNAL_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn levels_round_trip_codes_and_labels() {
        for level in [Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::from_code(level.code()), Some(level));
            assert_eq!(Level::parse(level.label()), Some(level));
        }
        assert_eq!(Level::from_code(9), None);
        assert_eq!(Level::parse("fatal"), None);
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
    }

    #[test]
    fn emit_and_tail_in_sequence_order() {
        let j = Journal::with_capacity(16);
        assert_eq!(j.emit(Level::Info, "a", &[("k", "1".into())]), 0);
        assert_eq!(j.emit(Level::Warn, "b", &[]), 1);
        assert_eq!(j.emit(Level::Error, "c", &[]), 2);
        let all = j.tail(0, 100);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].kind, "a");
        assert_eq!(all[0].fields, [("k".to_string(), "1".to_string())]);
        assert_eq!(all[2].level, Level::Error);
        // Tail from a mid-point sees only newer events.
        let newer = j.tail(2, 100);
        assert_eq!(newer.len(), 1);
        assert_eq!(newer[0].kind, "c");
        assert!(j.tail(3, 100).is_empty());
        assert_eq!(j.next_seq(), 3);
    }

    #[test]
    fn ring_overwrites_oldest_and_max_caps_the_tail() {
        let j = Journal::with_capacity(4);
        for i in 0..10u64 {
            j.emit(Level::Info, &format!("e{i}"), &[]);
        }
        let all = j.tail(0, 100);
        assert_eq!(all.len(), 4, "ring keeps only the last capacity events");
        assert_eq!(all[0].seq, 6);
        assert_eq!(all[3].seq, 9);
        let capped = j.tail(0, 2);
        assert_eq!(capped.len(), 2);
        assert_eq!(capped[0].seq, 6, "max keeps the oldest so tailing never skips");
    }

    #[test]
    fn sink_receives_jsonl_lines() {
        #[derive(Clone, Default)]
        struct Buf(Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let j = Journal::with_capacity(8);
        j.set_sink(Box::new(buf.clone()));
        j.emit(Level::Warn, "cap_refused", &[("error", "permission \"denied\"".into())]);
        j.take_sink();
        j.emit(Level::Info, "after", &[]); // sink removed: not written
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("{\"seq\":0,"), "{line}");
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"kind\":\"cap_refused\""));
        assert!(line.contains(r#""error":"permission \"denied\"""#), "{line}");
    }

    #[test]
    fn global_journal_is_a_singleton() {
        let a = journal() as *const Journal;
        let b = journal() as *const Journal;
        assert_eq!(a, b);
        assert_eq!(journal().capacity(), JOURNAL_CAPACITY);
    }
}
