//! Renderers over a registry snapshot: Prometheus text exposition
//! (format v0.0.4) and a JSON `/vars` dump.
//!
//! The histogram layout is the workspace's log histogram: bucket 0
//! holds only the sample `0`, bucket `i >= 1` holds `[2^(i-1), 2^i)` of
//! integer nanoseconds, and the final bucket is unbounded. The exact
//! inclusive upper bound of bucket `i` is therefore `2^i - 1`, which is
//! what the `le` labels say; the unbounded tail bucket folds into
//! `+Inf` only. The histogram tracks no sum of samples, so no `_sum`
//! series is emitted — `_bucket` and `_count` are complete and
//! self-consistent (`+Inf` == `_count` by construction).

use crate::registry::{MetricSnapshot, Sample};

/// Escapes a `# HELP` body: backslashes and newlines.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslashes, double quotes, and newlines —
/// the three characters the text format requires escaping.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a label set as `{k="v",...}`; empty string for no labels.
/// `extra` appends one more pair (the histogram `le`).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_value(v: &Sample) -> String {
    match v {
        Sample::U64(n) => n.to_string(),
        Sample::F64(x) => {
            if x.is_nan() {
                "NaN".into()
            } else if x.is_infinite() {
                (if *x > 0.0 { "+Inf" } else { "-Inf" }).into()
            } else {
                format!("{x}")
            }
        }
        Sample::Hist(_) => unreachable!("histograms render bucket lines, not a scalar"),
    }
}

/// Renders a snapshot as Prometheus text exposition format v0.0.4.
pub fn render_prometheus(snap: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for fam in snap {
        out.push_str(&format!("# HELP {} {}\n", fam.name, escape_help(&fam.help)));
        out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.label()));
        for series in &fam.series {
            match &series.value {
                Sample::Hist(buckets) => {
                    let count: u64 = buckets.iter().sum();
                    let mut cum = 0u64;
                    for (i, &c) in buckets.iter().enumerate() {
                        // The final bucket is unbounded: it has no
                        // finite le and folds into +Inf below.
                        if i + 1 == buckets.len() {
                            break;
                        }
                        cum += c;
                        let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            fam.name,
                            label_block(&series.labels, Some(("le", &le.to_string()))),
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {count}\n",
                        fam.name,
                        label_block(&series.labels, Some(("le", "+Inf"))),
                    ));
                    out.push_str(&format!(
                        "{}_count{} {count}\n",
                        fam.name,
                        label_block(&series.labels, None),
                    ));
                }
                v => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        fam.name,
                        label_block(&series.labels, None),
                        render_value(v),
                    ));
                }
            }
        }
    }
    out
}

/// Escapes a string for a JSON string literal body.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as the `/vars` JSON array: one object per series,
/// `{"name":...,"kind":...,"labels":{...},"value":...}` (histograms
/// carry `{"buckets":[...],"count":N}` as their value).
pub fn render_vars(snap: &[MetricSnapshot]) -> String {
    let mut rows = Vec::new();
    for fam in snap {
        for series in &fam.series {
            let labels = series
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
                .collect::<Vec<_>>()
                .join(",");
            let value = match &series.value {
                Sample::U64(n) => n.to_string(),
                Sample::F64(x) if x.is_finite() => format!("{x}"),
                Sample::F64(_) => "null".into(),
                Sample::Hist(buckets) => {
                    let count: u64 = buckets.iter().sum();
                    let list = buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
                    format!("{{\"buckets\":[{list}],\"count\":{count}}}")
                }
            };
            rows.push(format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"labels\":{{{labels}}},\"value\":{value}}}",
                json_escape(&fam.name),
                fam.kind.label(),
            ));
        }
    }
    format!("[{}]", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    #[test]
    fn help_type_and_value_lines_render() {
        let reg = MetricRegistry::new();
        reg.register_counter("store_gets_total", "Point lookups.", &[], || 7);
        reg.register_gauge_u64("store_mem_bytes", "Resident bytes.", &[], || 512);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# HELP store_gets_total Point lookups.\n"));
        assert!(text.contains("# TYPE store_gets_total counter\n"));
        assert!(text.contains("\nstore_gets_total 7\n"));
        assert!(text.contains("# TYPE store_mem_bytes gauge\n"));
        assert!(text.contains("\nstore_mem_bytes 512\n"));
    }

    #[test]
    fn label_values_escape_quotes_backslashes_and_newlines() {
        let reg = MetricRegistry::new();
        reg.register_counter(
            "odd_total",
            "odd",
            &[("path", "a\\b"), ("quote", "say \"hi\""), ("nl", "two\nlines")],
            || 1,
        );
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains(r#"nl="two\nlines""#), "newline must escape: {text}");
        assert!(text.contains(r#"path="a\\b""#), "backslash must escape: {text}");
        assert!(text.contains(r#"quote="say \"hi\"""#), "quote must escape: {text}");
        // The raw (unescaped) forms must not leak through.
        assert!(!text.contains("two\nlines"));
    }

    #[test]
    fn help_bodies_escape_backslashes_and_newlines() {
        let reg = MetricRegistry::new();
        reg.register_counter("h_total", "line one\nline \\two", &[], || 0);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains(r"# HELP h_total line one\nline \\two"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_monotone_and_inf_equals_count() {
        // The workspace log layout: bucket 0 = {0}, bucket i = [2^(i-1), 2^i).
        let mut buckets = vec![0u64; 45];
        buckets[0] = 2; // two zero-ns samples
        buckets[4] = 3; // three in [8, 16)
        buckets[10] = 5;
        buckets[44] = 1; // one in the unbounded tail
        let reg = MetricRegistry::new();
        let b = buckets.clone();
        reg.register_histogram("lat_ns", "latency", &[], move || b.clone());
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE lat_ns histogram\n"));
        // Parse every bucket line back and check monotonicity.
        let mut last = 0u64;
        let mut bounds = Vec::new();
        for line in text.lines().filter(|l| l.starts_with("lat_ns_bucket")) {
            let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(cum >= last, "cumulative buckets must be monotone: {line}");
            last = cum;
            bounds.push(line.split("le=\"").nth(1).unwrap().split('"').next().unwrap().to_string());
        }
        // le bounds: bucket 0 -> "0", bucket i -> 2^i - 1, tail -> +Inf.
        assert_eq!(bounds[0], "0");
        assert_eq!(bounds[1], "1");
        assert_eq!(bounds[4], "15");
        assert_eq!(bounds.last().unwrap(), "+Inf");
        assert_eq!(bounds.len(), 45, "44 finite bounds plus +Inf");
        let total: u64 = buckets.iter().sum();
        assert_eq!(last, total, "+Inf bucket must equal the sample count");
        assert!(text.contains(&format!("lat_ns_count {total}\n")));
        assert!(!text.contains("lat_ns_sum"), "log histograms track no sum");
    }

    #[test]
    fn scrapes_render_identically_regardless_of_registration_order() {
        let a = MetricRegistry::new();
        a.register_counter("x_total", "x", &[("server", "threads")], || 1);
        a.register_counter("b_total", "b", &[], || 2);
        a.register_counter("x_total", "x", &[("server", "epoll")], || 3);
        let b = MetricRegistry::new();
        b.register_counter("x_total", "x", &[("server", "epoll")], || 3);
        b.register_counter("x_total", "x", &[("server", "threads")], || 1);
        b.register_counter("b_total", "b", &[], || 2);
        assert_eq!(render_prometheus(&a.snapshot()), render_prometheus(&b.snapshot()));
    }

    #[test]
    fn vars_renders_parseable_json_shapes() {
        let reg = MetricRegistry::new();
        reg.register_counter("c_total", "c", &[("k", "v\"q")], || 9);
        reg.register_gauge("w", "watts", &[], || 1.5);
        reg.register_histogram("h", "h", &[], || vec![1, 0, 2]);
        let json = render_vars(&reg.snapshot());
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""name":"c_total""#));
        assert!(json.contains(r#""k":"v\"q""#), "label values JSON-escape: {json}");
        assert!(json.contains(r#""value":9"#));
        assert!(json.contains(r#""value":1.5"#));
        assert!(json.contains(r#""buckets":[1,0,2],"count":3"#));
    }
}
