//! The metrics sidecar: a tiny blocking HTTP/1.0 listener serving the
//! registry to anything that speaks Prometheus.
//!
//! One accept thread, one request per connection, `Connection: close` —
//! the same patient blocking discipline as poly-net's threads server,
//! shrunk to the three read-only endpoints a scraper needs:
//!
//! | endpoint   | body                                          |
//! |------------|-----------------------------------------------|
//! | `/metrics` | Prometheus text exposition (format v0.0.4)    |
//! | `/healthz` | `ok` once the server reports ready, else 503  |
//! | `/vars`    | JSON snapshot of every series                 |
//!
//! Scrapes never block the serving hot path: collectors read the same
//! relaxed atomics the native stats snapshots read.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::registry::MetricRegistry;
use crate::{render_prometheus, render_vars};

/// How long one request may take to arrive/drain before the sidecar
/// drops the connection and moves on.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// The running sidecar; dropping it stops the listener and joins the
/// accept thread.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("local_addr", &self.local_addr).finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (port 0 picks a free port) and starts serving
    /// `registry`. `ready` backs `/healthz`: scrapers and CI gates wait
    /// on it instead of sleeping.
    pub fn serve<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<MetricRegistry>,
        ready: impl Fn() -> bool + Send + Sync + 'static,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("poly-obs-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    if let Ok(stream) = conn {
                        // One bad client must not wedge the sidecar.
                        let _ = handle_conn(stream, &registry, &ready);
                    }
                }
            })
            .expect("spawn metrics sidecar thread");
        Ok(Self { local_addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // A blocking accept only notices the flag on its next
        // connection; a self-connect is that connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, IO_TIMEOUT);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_conn(
    stream: TcpStream,
    registry: &MetricRegistry,
    ready: &(impl Fn() -> bool + ?Sized),
) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; the request has no body we care about.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let mut stream = reader.into_inner();
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n",
        );
    }
    // Ignore any query string: /metrics?foo=1 is still /metrics.
    match path.split('?').next().unwrap_or("") {
        "/metrics" => {
            let body = render_prometheus(&registry.snapshot());
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/healthz" => {
            if ready() {
                respond(&mut stream, "200 OK", "text/plain", "ok\n")
            } else {
                respond(&mut stream, "503 Service Unavailable", "text/plain", "not ready\n")
            }
        }
        "/vars" => {
            let body = render_vars(&registry.snapshot());
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// One blocking GET against a sidecar: returns `(status_code, body)`.
/// The client half of [`MetricsServer`], shared by `store events`' CI
/// smoke, the e2e tests, and anyone scripting against the sidecar
/// without curl.
pub fn http_get(addr: &SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: poly\r\n\r\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    // Skip headers.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut body = String::new();
    io::Read::read_to_string(&mut reader, &mut body)?;
    Ok((code, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn test_registry() -> Arc<MetricRegistry> {
        let reg = MetricRegistry::new();
        let n = Arc::new(AtomicU64::new(5));
        reg.register_counter("demo_ops_total", "Demo ops.", &[], move || n.load(Ordering::Relaxed));
        Arc::new(reg)
    }

    #[test]
    fn metrics_endpoint_serves_the_exposition() {
        let server = MetricsServer::serve("127.0.0.1:0", test_registry(), || true).unwrap();
        let (code, body) = http_get(&server.local_addr(), "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("# TYPE demo_ops_total counter"));
        assert!(body.contains("demo_ops_total 5"));
        // Query strings are ignored, and a second scrape works (the
        // sidecar outlives one connection).
        let (code, body2) = http_get(&server.local_addr(), "/metrics?x=1").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, body2);
    }

    #[test]
    fn healthz_tracks_the_readiness_closure() {
        let ready = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&ready);
        let server =
            MetricsServer::serve("127.0.0.1:0", test_registry(), move || r.load(Ordering::Relaxed))
                .unwrap();
        let (code, body) = http_get(&server.local_addr(), "/healthz").unwrap();
        assert_eq!(code, 503, "not ready yet: {body}");
        ready.store(true, Ordering::Relaxed);
        let (code, body) = http_get(&server.local_addr(), "/healthz").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "ok\n");
    }

    #[test]
    fn vars_unknown_paths_and_bad_methods() {
        let server = MetricsServer::serve("127.0.0.1:0", test_registry(), || true).unwrap();
        let (code, body) = http_get(&server.local_addr(), "/vars").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains(r#""name":"demo_ops_total""#));
        let (code, _) = http_get(&server.local_addr(), "/nope").unwrap();
        assert_eq!(code, 404);
        // A non-GET request gets 405, not a hang or a close.
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        write!(raw, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        io::Read::read_to_string(&mut BufReader::new(raw), &mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 405"), "{resp}");
    }

    #[test]
    fn drop_stops_the_listener_quickly() {
        let server = MetricsServer::serve("127.0.0.1:0", test_registry(), || true).unwrap();
        let addr = server.local_addr();
        let t0 = std::time::Instant::now();
        drop(server);
        assert!(t0.elapsed() < Duration::from_secs(2), "drop hung on the accept thread");
        // The port is released: a fresh bind to it succeeds (or at
        // minimum, connecting no longer reaches a serving sidecar).
        assert!(http_get(&addr, "/metrics").is_err() || TcpListener::bind(addr).is_ok());
    }
}
