//! `poly-trace` — windowed time-series telemetry for the "Unlocking
//! Energy" reproduction.
//!
//! Every number the repo emitted before this crate was an end-of-run
//! aggregate; the paper's core claims (MUTEXEE's spin-vs-sleep
//! trade-off, TPP/EPO under DVFS) are about *behavior over time*. This
//! crate watches runs as they happen:
//!
//! * [`WindowSample`] — one window of deltas: ops, per-window p50/p99,
//!   lock wait/hold, measured pkg/dram µJ, the applied frequency cap;
//! * [`TraceRing`] — a lock-free single-writer/many-reader ring of the
//!   most recent windows (the STATS v2 frame and `store top` read it
//!   while the collector writes);
//! * [`Windower`] — virtual-clock window accounting over cumulative
//!   marks, so tests drive windows deterministically;
//! * [`run_load_traced`] / [`LoadTelemetry`] — a driver run with a
//!   collector thread ticking at `--trace-interval`; windows bracket
//!   the measured interval exactly (ops and µJ telescope to the
//!   aggregate report);
//! * [`StoreCollector`] — the serve-mode collector watching a
//!   [`poly_store::PolyStore`] for the server's lifetime;
//! * [`HeatSample`] / [`HeatWindower`] / [`write_heat`] — the per-shard
//!   heat layer: windowed per-shard deltas with hot-key sketches,
//!   collected beside the aggregate windows from the same snapshot pass
//!   so per-shard ops telescope to the aggregate exactly;
//! * [`TimelineRow`] / [`write_timeline`] — the `*.timeline.jsonl` sink
//!   (schema owned by `poly-report`'s `TIMELINE` registry);
//! * [`ChromeTrace`] — the chrome://tracing (`trace_event`) exporter
//!   with per-window slices and nested lock-wait children.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use poly_locks_sim::LockKind;
//! use poly_store::{KvMix, LoadSpec, PolyStore, StoreConfig};
//! use poly_trace::{run_load_traced, TraceSpec};
//!
//! let mix = KvMix::uniform().with_shards(4);
//! let store = PolyStore::new(StoreConfig { shards: mix.shards, lock: LockKind::Mutexee, ..Default::default() });
//! let spec = LoadSpec { rate_ops_s: Some(5_000), ..LoadSpec::saturating(mix, 2, 250, 42) };
//! let (report, windows) =
//!     run_load_traced(&store, &spec, &TraceSpec::new(Duration::from_millis(10)));
//! assert_eq!(windows.iter().map(|w| w.ops).sum::<u64>(), report.ops);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod chrome;
mod collector;
mod heat;
mod ring;
mod sample;
mod timeline;
mod windower;

pub use chrome::ChromeTrace;
pub use collector::{run_load_traced, HeatHandle, LoadTelemetry, StoreCollector, TraceSpec};
pub use heat::{shard_skew, top_shard_pct, write_heat, HeatSample, HeatWindower, ShardHeat};
pub use ring::TraceRing;
pub use sample::{WindowSample, WORDS};
pub use timeline::{write_timeline, write_timeline_with_heat, TimelineCell, TimelineRow};
pub use windower::Windower;
