//! Per-shard heat telemetry: the contention-point view the aggregate
//! [`WindowSample`](crate::WindowSample) cannot give.
//!
//! The paper's argument is that lock behavior must be measured per
//! contention point, not modeled in aggregate — and in this store the
//! contention points are the shards. A [`HeatSample`] is one collector
//! window broken down by shard: point ops, lock wait/hold, evictions,
//! the residency gauge, and the shard's hot-key sketch. Per-shard ops
//! telescope exactly like the aggregate windows do: summing a window's
//! [`ShardHeat::ops`] across shards reproduces the matching
//! `WindowSample::ops` when both came from the same snapshot pass
//! ([`poly_store::PolyStore::stats_with_shards`]) — the invariant the
//! hot-shard rebalancer and autotuner will steer by.

use std::io::{self, Write};

use poly_report::{fmt_opt_f64, json_escape};
use poly_store::{HotKey, StatsSnapshot};

use crate::timeline::TimelineCell;

/// One shard's activity over a heat window. Every field but the gauges
/// is a delta over the window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardHeat {
    /// Point ops (gets + puts + removes) the shard served in the window.
    pub ops: u64,
    /// Shard-lock wait accumulated in the window, nanoseconds.
    pub lock_wait_ns: u64,
    /// Shard-lock hold accumulated in the window, nanoseconds.
    pub lock_hold_ns: u64,
    /// Entries the CLOCK hand evicted from the shard in the window.
    pub evictions: u64,
    /// Resident value bytes in the shard's slab at window close (gauge).
    pub mem_bytes: u64,
    /// The shard's hot-key sketch as of window close (cumulative, like
    /// the gauges): hottest first, zero-count slots dropped.
    pub top_keys: Vec<HotKey>,
}

/// One window of per-shard heat, collected beside the aggregate
/// [`WindowSample`](crate::WindowSample) by the
/// [`StoreCollector`](crate::StoreCollector).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeatSample {
    /// Window index within the run (0-based, contiguous — matches the
    /// aggregate window pushed at the same tick).
    pub window: u64,
    /// Window start, nanoseconds since the collector spawned.
    pub start_ns: u64,
    /// Window end, nanoseconds since the collector spawned.
    pub end_ns: u64,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardHeat>,
}

impl HeatSample {
    /// Point ops across all shards this window (equals the matching
    /// aggregate window's `ops` by construction).
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.ops).sum()
    }

    /// Shard skew: the hottest shard's ops over the mean shard's ops
    /// (1.0 = perfectly balanced, `shards.len()` = one shard took
    /// everything). `None` when the window saw no ops.
    pub fn shard_skew(&self) -> Option<f64> {
        shard_skew(&self.ops_per_shard())
    }

    /// Share of the window's point ops the hottest shard absorbed, as a
    /// percentage. `None` when the window saw no ops.
    pub fn top_shard_pct(&self) -> Option<f64> {
        top_shard_pct(&self.ops_per_shard())
    }

    /// The hottest shard this window (by ops), `None` when idle.
    pub fn hottest(&self) -> Option<(usize, &ShardHeat)> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ops > 0)
            .max_by_key(|(i, s)| (s.ops, usize::MAX - i))
    }

    fn ops_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.ops).collect()
    }
}

/// Shard skew over per-shard point-op counts: max/mean. `None` when no
/// shard saw an op (skew of nothing is not 0, it is undefined). Shared
/// by the per-window view and the aggregate report columns.
pub fn shard_skew(ops: &[u64]) -> Option<f64> {
    let total: u64 = ops.iter().sum();
    if total == 0 || ops.is_empty() {
        return None;
    }
    let max = *ops.iter().max().expect("non-empty");
    Some(max as f64 * ops.len() as f64 / total as f64)
}

/// The hottest shard's share of all point ops, percent. `None` when no
/// shard saw an op.
pub fn top_shard_pct(ops: &[u64]) -> Option<f64> {
    let total: u64 = ops.iter().sum();
    if total == 0 {
        return None;
    }
    let max = *ops.iter().max().expect("nonzero total implies non-empty");
    Some(max as f64 * 100.0 / total as f64)
}

/// Per-shard window accounting over cumulative per-shard snapshots —
/// the per-shard sibling of [`Windower`](crate::Windower), driven by the
/// same virtual clock so the two stay in lockstep.
#[derive(Debug)]
pub struct HeatWindower {
    window: u64,
    last_ns: u64,
    last: Vec<StatsSnapshot>,
}

impl HeatWindower {
    /// Opens the accounting at `now_ns` with the per-shard base marks.
    pub fn open(now_ns: u64, shards: Vec<StatsSnapshot>) -> Self {
        Self { window: 0, last_ns: now_ns, last: shards }
    }

    /// Closes the current window at fresh per-shard marks and opens the
    /// next. Clock regressions clamp to zero-length windows, matching
    /// the aggregate windower.
    pub fn tick(&mut self, now_ns: u64, shards: &[StatsSnapshot]) -> HeatSample {
        let end_ns = now_ns.max(self.last_ns);
        let heat = HeatSample {
            window: self.window,
            start_ns: self.last_ns,
            end_ns,
            shards: shards
                .iter()
                .zip(&self.last)
                .map(|(now, last)| {
                    let d = now.delta(last);
                    ShardHeat {
                        ops: d.point_ops(),
                        lock_wait_ns: d.lock_wait_ns,
                        lock_hold_ns: d.lock_hold_ns,
                        evictions: d.evictions,
                        mem_bytes: d.mem_bytes,
                        top_keys: now.top_keys.iter().copied().filter(|hk| hk.count > 0).collect(),
                    }
                })
                .collect(),
        };
        self.window += 1;
        self.last_ns = end_ns;
        self.last = shards.to_vec();
        heat
    }
}

/// Writes one cell's heat windows as heat JSONL records: one line per
/// shard per window, stamped with the cell identity (the join key back
/// to the aggregate and timeline rows) and the window-level skew
/// summaries repeated on every shard row so a single `grep` can filter
/// by either axis. Hand-rolled flat JSON like the timeline sink, plus
/// one nested `top_keys` array of `{"key":K,"count":C}` objects.
pub fn write_heat<W: Write>(
    w: &mut W,
    cell: &TimelineCell,
    samples: &[HeatSample],
) -> io::Result<()> {
    for sample in samples {
        let skew = fmt_opt_f64(sample.shard_skew());
        let top_pct = fmt_opt_f64(sample.top_shard_pct());
        for (idx, shard) in sample.shards.iter().enumerate() {
            let keys: Vec<String> = shard
                .top_keys
                .iter()
                .map(|hk| format!("{{\"key\":{},\"count\":{}}}", hk.key, hk.count))
                .collect();
            writeln!(
                w,
                "{{\"scenario\":{},\"workload\":{},\"transport\":{},\
                 \"server\":{},\"lock\":{},\"shards\":{},\"threads\":{},\"seed\":{},\
                 \"window\":{},\"start_ns\":{},\"end_ns\":{},\"shard\":{},\"ops\":{},\
                 \"lock_wait_ns\":{},\"lock_hold_ns\":{},\"evictions\":{},\"mem_bytes\":{},\
                 \"shard_skew\":{},\"top_shard_pct\":{},\"top_keys\":[{}]}}",
                json_escape(&cell.scenario),
                json_escape(&cell.workload),
                json_escape(&cell.transport),
                json_escape(&cell.server),
                json_escape(&cell.lock),
                cell.shards,
                cell.threads,
                cell.seed,
                sample.window,
                sample.start_ns,
                sample.end_ns,
                idx,
                shard.ops,
                shard.lock_wait_ns,
                shard.lock_hold_ns,
                shard.evictions,
                shard.mem_bytes,
                skew,
                top_pct,
                keys.join(",")
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_store::ShardStats;

    fn heat(ops: &[u64]) -> HeatSample {
        HeatSample {
            window: 0,
            start_ns: 0,
            end_ns: 1_000,
            shards: ops.iter().map(|&o| ShardHeat { ops: o, ..ShardHeat::default() }).collect(),
        }
    }

    #[test]
    fn skew_summaries() {
        // Perfectly balanced: skew 1, top share 25%.
        let h = heat(&[10, 10, 10, 10]);
        assert_eq!(h.shard_skew(), Some(1.0));
        assert_eq!(h.top_shard_pct(), Some(25.0));
        // One shard takes everything: skew = shard count, share 100%.
        let h = heat(&[0, 40, 0, 0]);
        assert_eq!(h.shard_skew(), Some(4.0));
        assert_eq!(h.top_shard_pct(), Some(100.0));
        assert_eq!(h.hottest().map(|(i, s)| (i, s.ops)), Some((1, 40)));
        // Idle window: skew is undefined, not 0 or NaN.
        let h = heat(&[0, 0]);
        assert_eq!(h.shard_skew(), None);
        assert_eq!(h.top_shard_pct(), None);
        assert_eq!(h.hottest().map(|(i, _)| i), None);
        assert_eq!(shard_skew(&[]), None);
        assert_eq!(top_shard_pct(&[]), None);
    }

    #[test]
    fn heat_windower_deltas_per_shard() {
        let a = ShardStats::new();
        let b = ShardStats::new();
        a.record_get(true);
        a.record_lock(10, 20);
        let mut hw = HeatWindower::open(0, vec![a.snapshot(), b.snapshot()]);
        a.record_put();
        a.record_lock(5, 7);
        b.record_remove();
        b.record_evictions(3);
        b.set_mem_bytes(64);
        let h = hw.tick(1_000, &[a.snapshot(), b.snapshot()]);
        assert_eq!(h.window, 0);
        assert_eq!((h.start_ns, h.end_ns), (0, 1_000));
        assert_eq!(h.shards[0].ops, 1, "only the put landed in the window");
        assert_eq!((h.shards[0].lock_wait_ns, h.shards[0].lock_hold_ns), (5, 7));
        assert_eq!(h.shards[1].ops, 1);
        assert_eq!(h.shards[1].evictions, 3);
        assert_eq!(h.shards[1].mem_bytes, 64, "gauge at window close");
        assert_eq!(h.total_ops(), 2);
        // The next tick telescopes from the previous marks.
        a.record_get(false);
        let h2 = hw.tick(2_000, &[a.snapshot(), b.snapshot()]);
        assert_eq!(h2.window, 1);
        assert_eq!((h2.start_ns, h2.end_ns), (1_000, 2_000));
        assert_eq!(h2.total_ops(), 1);
        // A clock regression clamps to a zero-length window.
        let h3 = hw.tick(500, &[a.snapshot(), b.snapshot()]);
        assert_eq!((h3.start_ns, h3.end_ns), (2_000, 2_000));
    }

    #[test]
    fn heat_rows_render_one_line_per_shard_per_window() {
        let cell = TimelineCell {
            scenario: "kv-zipf".into(),
            workload: "kv/2sh/z1200/g70p25d3s2".into(),
            transport: "local".into(),
            server: "none".into(),
            lock: "MUTEXEE".into(),
            shards: 2,
            threads: 2,
            seed: 42,
        };
        let mut sample = heat(&[30, 10]);
        sample.shards[0].top_keys = vec![HotKey { key: 7, count: 80 }];
        let mut out = Vec::new();
        write_heat(&mut out, &cell, &[sample]).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one row per shard");
        // Pin the full identity head: json_escape supplies the quotes,
        // so the format string must not add its own.
        assert!(
            lines[0].starts_with(
                "{\"scenario\":\"kv-zipf\",\"workload\":\"kv/2sh/z1200/g70p25d3s2\",\
                 \"transport\":\"local\",\"server\":\"none\",\"lock\":\"MUTEXEE\",\
                 \"shards\":2,\"threads\":2,\"seed\":42,"
            ),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"shard\":0,\"ops\":30"), "{}", lines[0]);
        assert!(lines[0].contains("\"shard_skew\":1.5,\"top_shard_pct\":75"), "{}", lines[0]);
        assert!(lines[0].contains("\"top_keys\":[{\"key\":7,\"count\":80}]"), "{}", lines[0]);
        assert!(lines[1].contains("\"shard\":1,\"ops\":10"), "{}", lines[1]);
        assert!(lines[1].ends_with("\"top_keys\":[]}"), "{}", lines[1]);
    }
}
