//! The collectors: background threads that tick a [`Windower`] against
//! live marks and push the windows into a [`TraceRing`].
//!
//! Two shapes:
//!
//! * [`run_load_traced`] — wraps one driver run. A [`LoadTelemetry`]
//!   observer counts client ops and latencies on the hot path
//!   (lock-free), a collector thread ticks at `--trace-interval`, and
//!   the driver's own window marks open/close the accounting — so the
//!   windows bracket *exactly* the measured interval: their op counts
//!   sum to the report's, their µJ sum to its measured energy.
//! * [`StoreCollector`] — watches a serving [`PolyStore`] for the
//!   lifetime of `store serve`, feeding the ring the STATS v2 frame and
//!   `store top` read from.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use poly_meter::{MeasuredReading, RaplSampler};
use poly_store::{
    run_load_observed, KvService, LatencyHistogram, LoadObserver, LoadReport, LoadSpec, PolyStore,
    StatsSnapshot,
};

use crate::heat::{HeatSample, HeatWindower};
use crate::ring::TraceRing;
use crate::sample::WindowSample;
use crate::windower::Windower;

/// Shared slot holding the collector's most recent closed
/// [`HeatSample`]: the source the STATS heat opcode answers from.
/// `None` until the first window closes. A plain mutex (not the
/// lock-free ring) because heat windows are variable-width — one
/// [`ShardHeat`](crate::ShardHeat) per shard plus a key list — and the
/// readers (one frame handler per request) are far off the hot path.
pub type HeatHandle = Arc<Mutex<Option<HeatSample>>>;

/// Telemetry parameters of a traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Window length the collector ticks at.
    pub interval: Duration,
    /// Ring capacity in windows (the timeline keeps at most this many;
    /// default 4096 ≈ 3.4 minutes at 50 ms windows).
    pub capacity: usize,
}

impl TraceSpec {
    /// A spec with the default ring capacity.
    pub fn new(interval: Duration) -> Self {
        Self { interval, capacity: 4096 }
    }
}

/// How long the collector sleeps between due-checks: short enough to
/// stop promptly when the run ends, long enough not to perturb a 1-CPU
/// host.
fn poll_slice(interval: Duration) -> Duration {
    (interval / 4).clamp(Duration::from_micros(500), Duration::from_millis(5))
}

struct OpenWindow {
    windower: Windower,
    /// Wall-clock origin of the measure window; collector ticks convert
    /// to ns-since-open against it.
    origin: Instant,
}

/// The [`LoadObserver`] feeding a traced run: counts ops and latencies
/// lock-free on the client hot path, and turns collector ticks into
/// ring windows.
///
/// The driver's `window_open`/`window_close` marks start and finish the
/// accounting; [`LoadTelemetry::poll`] (called by the collector thread
/// with fresh service marks) closes intermediate windows. The closing
/// mark always produces a final window, so the ring's windows partition
/// the whole measured interval.
pub struct LoadTelemetry {
    ops: AtomicU64,
    hist: LatencyHistogram,
    ring: Arc<TraceRing>,
    freq_khz: Option<u64>,
    state: Mutex<Option<OpenWindow>>,
}

impl LoadTelemetry {
    /// A telemetry sink with a fresh ring of `capacity` windows;
    /// `freq_khz` stamps every window with the cap in force.
    pub fn new(capacity: usize, freq_khz: Option<u64>) -> Self {
        Self {
            ops: AtomicU64::new(0),
            hist: LatencyHistogram::new(),
            ring: Arc::new(TraceRing::new(capacity)),
            freq_khz,
            state: Mutex::new(None),
        }
    }

    /// The ring the windows land in (share it with a STATS v2 server or
    /// snapshot it after the run).
    pub fn ring(&self) -> Arc<TraceRing> {
        Arc::clone(&self.ring)
    }

    /// Closes the current window at fresh service marks and pushes it.
    /// No-op before the measure window opens or after it closes.
    pub fn poll(&self, stats: &StatsSnapshot, measured: Option<MeasuredReading>) {
        let mut state = self.state.lock().unwrap();
        if let Some(open) = state.as_mut() {
            let now_ns = open.origin.elapsed().as_nanos() as u64;
            let sample = open.windower.tick(
                now_ns,
                self.ops.load(Ordering::Relaxed),
                self.hist.snapshot(),
                *stats,
                measured,
            );
            self.ring.push(&sample);
        }
    }
}

impl LoadObserver for LoadTelemetry {
    fn window_open(&self, base: &StatsSnapshot, measured: Option<MeasuredReading>) {
        let windower = Windower::open(
            0,
            self.ops.load(Ordering::Relaxed),
            self.hist.snapshot(),
            *base,
            measured,
            self.freq_khz,
        );
        *self.state.lock().unwrap() = Some(OpenWindow { windower, origin: Instant::now() });
    }

    fn on_op(&self, latency_ns: u64) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.hist.record(latency_ns);
    }

    fn window_close(&self, end: &StatsSnapshot, measured: Option<MeasuredReading>) {
        let mut state = self.state.lock().unwrap();
        if let Some(mut open) = state.take() {
            // The final (usually partial) window: closed at the driver's
            // own end marks, so the tail ops and joules are never lost
            // and the windows telescope to the aggregate exactly.
            let now_ns = open.origin.elapsed().as_nanos() as u64;
            let sample = open.windower.tick(
                now_ns,
                self.ops.load(Ordering::Relaxed),
                self.hist.snapshot(),
                *end,
                measured,
            );
            self.ring.push(&sample);
        }
    }
}

/// Runs a load with windowed telemetry: [`poly_store::run_load_on`]
/// plus a collector thread ticking every `trace.interval`. Returns the
/// aggregate report and the run's windows (oldest first).
///
/// The windows partition the measured interval: their `ops` sum to
/// `report.ops`, and on a metered service their µJ sum to the report's
/// measured energy exactly (the collector reuses the driver's own
/// window marks). Windows beyond `trace.capacity` are dropped oldest
/// first — size the ring to the run when the full timeline matters.
///
/// # Panics
///
/// Panics if the mix fails validation (like `run_load_on`).
pub fn run_load_traced<S: KvService>(
    svc: &S,
    spec: &LoadSpec,
    trace: &TraceSpec,
) -> (LoadReport, Vec<WindowSample>) {
    let telemetry = LoadTelemetry::new(trace.capacity, spec.freq_khz);
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let telemetry = &telemetry;
        let stop = &stop;
        let collector = scope.spawn(move || {
            let slice = poll_slice(trace.interval);
            let mut next = Instant::now() + trace.interval;
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(slice);
                let now = Instant::now();
                if now >= next {
                    let (stats, measured) = svc.stats_and_energy();
                    telemetry.poll(&stats, measured);
                    // Skip missed windows instead of bunching ticks: on
                    // an overloaded host the next window is simply
                    // longer (its marks say so) — never zero-length.
                    next += trace.interval;
                    if next < now {
                        next = now + trace.interval;
                    }
                }
            }
        });
        let report = run_load_observed(svc, spec, telemetry);
        stop.store(true, Ordering::Release);
        collector.join().expect("trace collector panicked");
        report
    });
    let windows = telemetry.ring().snapshot();
    (report, windows)
}

/// A background collector for a *serving* store (`store serve`): ticks
/// the store's merged stats (and the process's RAPL sampler, when
/// metered) every `interval` into a ring, for as long as the collector
/// lives.
///
/// Server-side semantics differ from a driver run: `ops` counts the
/// store's *point ops* (gets + puts + removes — scans and batch
/// applications move through their own counters), and the latency
/// percentiles are service times, not client request latencies.
pub struct StoreCollector {
    ring: Arc<TraceRing>,
    heat: HeatHandle,
    heat_log: Arc<Mutex<VecDeque<HeatSample>>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for StoreCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreCollector").field("ring", &self.ring).finish()
    }
}

impl StoreCollector {
    /// Spawns the collector thread; windows start at the spawn instant.
    pub fn spawn(
        store: Arc<PolyStore>,
        sampler: Option<Arc<RaplSampler>>,
        interval: Duration,
        capacity: usize,
        freq_khz: Option<u64>,
    ) -> Self {
        let ring = Arc::new(TraceRing::new(capacity));
        let heat: HeatHandle = Arc::new(Mutex::new(None));
        let heat_log = Arc::new(Mutex::new(VecDeque::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_ring = Arc::clone(&ring);
        let thread_heat = Arc::clone(&heat);
        let thread_heat_log = Arc::clone(&heat_log);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let origin = Instant::now();
            let marks = |stats: &StatsSnapshot| (stats.point_ops(), stats.latency);
            // One snapshot pass feeds both accountings, so a window's
            // per-shard heat ops sum to its aggregate ops *exactly*.
            let (stats, shards) = store.stats_with_shards();
            let measured = sampler.as_ref().map(|s| s.reading());
            let (ops, hist) = marks(&stats);
            let mut windower = Windower::open(0, ops, hist, stats, measured, freq_khz);
            let mut heat_windower = HeatWindower::open(0, shards);
            let slice = poll_slice(interval);
            let mut next = origin + interval;
            while !thread_stop.load(Ordering::Acquire) {
                std::thread::sleep(slice);
                let now = Instant::now();
                if now < next {
                    continue;
                }
                let (stats, shards) = store.stats_with_shards();
                let measured = sampler.as_ref().map(|s| s.reading());
                let (ops, hist) = marks(&stats);
                let now_ns = now.duration_since(origin).as_nanos() as u64;
                thread_ring.push(&windower.tick(now_ns, ops, hist, stats, measured));
                let sample = heat_windower.tick(now_ns, &shards);
                {
                    let mut log = thread_heat_log.lock().unwrap();
                    while log.len() >= capacity {
                        log.pop_front();
                    }
                    log.push_back(sample.clone());
                }
                *thread_heat.lock().unwrap() = Some(sample);
                next += interval;
                if next < now {
                    next = now + interval;
                }
            }
        });
        Self { ring, heat, heat_log, stop, handle: Some(handle) }
    }

    /// The ring the windows land in (hand it to the STATS v2 server).
    pub fn ring(&self) -> Arc<TraceRing> {
        Arc::clone(&self.ring)
    }

    /// The slot holding the most recent closed heat window (hand it to
    /// the STATS heat server opcode).
    pub fn heat_handle(&self) -> HeatHandle {
        Arc::clone(&self.heat)
    }

    /// Snapshot of the heat windows collected so far, oldest first.
    /// Bounded like the ring: at most `capacity` windows are kept,
    /// oldest dropped — the per-window sibling of
    /// [`TraceRing::snapshot`].
    pub fn heat_log(&self) -> Vec<HeatSample> {
        self.heat_log.lock().unwrap().iter().cloned().collect()
    }

    /// Registers the collector's telemetry-progress metrics: how many
    /// windows have closed and the newest window's ordinal and op
    /// count. Scrapers use these to tell a live-but-idle server from a
    /// wedged collector without speaking the STATS2 opcode.
    pub fn register_metrics(&self, reg: &poly_obs::MetricRegistry) {
        let ring = self.ring();
        reg.register_counter(
            "trace_windows_total",
            "Telemetry windows closed by the collector.",
            &[],
            move || ring.pushed(),
        );
        let ring = self.ring();
        reg.register_gauge_u64(
            "trace_last_window_ops",
            "Point ops recorded in the newest closed telemetry window.",
            &[],
            move || ring.latest().map(|w| w.ops).unwrap_or(0),
        );
    }

    /// Stops the collector thread and waits for it (idempotent; also
    /// runs on drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StoreCollector {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_locks_sim::LockKind;
    use poly_meter::FakeRapl;
    use poly_store::{KvMix, Metered, StoreConfig};

    fn small_threads() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(2)
    }

    #[test]
    fn traced_run_windows_sum_to_the_aggregate() {
        let mix = KvMix::uniform().with_shards(4);
        let store = PolyStore::new(StoreConfig {
            shards: mix.shards,
            lock: LockKind::Mutexee,
            ..Default::default()
        });
        // Paced so the run spans several windows deterministically-ish:
        // 400 ops at 4000/s per thread ≈ 100 ms against 10 ms windows.
        let spec = LoadSpec {
            rate_ops_s: Some(4_000),
            ..LoadSpec::saturating(mix, small_threads(), 400, 42)
        };
        let (report, windows) =
            run_load_traced(&store, &spec, &TraceSpec::new(Duration::from_millis(10)));
        assert_eq!(report.ops, spec.threads as u64 * 400);
        assert!(!windows.is_empty());
        assert!(windows.len() > 1, "a ~100 ms paced run must span several 10 ms windows");
        assert_eq!(
            windows.iter().map(|w| w.ops).sum::<u64>(),
            report.ops,
            "window ops must partition the run's ops"
        );
        // Contiguous partition of the measured interval, in order.
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.window, i as u64);
        }
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end_ns, pair[1].start_ns);
        }
        // Unmetered service: every window says so.
        assert!(windows.iter().all(|w| !w.measured && w.total_j().is_none()));
        assert!(windows.iter().all(|w| w.freq_khz.is_none()));
    }

    #[test]
    fn traced_metered_run_windows_sum_to_measured_energy() {
        let fake = FakeRapl::new("trace-collector");
        fake.domain(0, "package-0", 1_000_000);
        fake.named_domain("intel-rapl:0:0", "dram", 500);
        let sampler = Arc::new(
            RaplSampler::probe_at(fake.root(), Duration::from_millis(1)).unwrap().unwrap(),
        );
        let mix = KvMix::uniform().with_shards(2);
        let store = PolyStore::new(StoreConfig {
            shards: mix.shards,
            lock: LockKind::Ttas,
            ..Default::default()
        });
        let svc = Metered::new(&store, &sampler);
        let spec = LoadSpec {
            rate_ops_s: Some(3_000),
            ..LoadSpec::saturating(mix, small_threads(), 200, 7)
        };
        // A mutator advances the fake counters while the run executes,
        // like a live host would.
        let stop = AtomicBool::new(false);
        let (report, windows) = std::thread::scope(|scope| {
            let stop = &stop;
            let fake = &fake;
            let mutator = scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    fake.advance(0, 10_000);
                    std::thread::sleep(Duration::from_micros(500));
                }
            });
            let out = run_load_traced(&svc, &spec, &TraceSpec::new(Duration::from_millis(10)));
            stop.store(true, Ordering::Release);
            mutator.join().unwrap();
            out
        });
        let measured = report.measured.expect("metered run must measure");
        assert!(measured.total_j() > 0.0, "mutator advanced the counter");
        let window_uj: u64 = windows.iter().map(|w| w.pkg_uj + w.dram_uj).sum();
        // The collector reuses the driver's own marks, so the windows'
        // µJ telescope to the aggregate *exactly* (both sides integer µJ).
        let aggregate_uj = (measured.total_j() * 1e6).round() as u64;
        assert_eq!(window_uj, aggregate_uj, "window joules must sum to the report's");
        assert!(windows.iter().all(|w| w.measured));
        assert_eq!(windows.iter().map(|w| w.ops).sum::<u64>(), report.ops);
    }

    #[test]
    fn store_collector_watches_a_serving_store() {
        let store = Arc::new(PolyStore::new(StoreConfig {
            shards: 4,
            lock: LockKind::Mutex,
            ..Default::default()
        }));
        let mut collector =
            StoreCollector::spawn(Arc::clone(&store), None, Duration::from_millis(5), 64, None);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut key = 0u64;
        // Drive ops until at least three windows landed.
        while collector.ring().pushed() < 3 {
            assert!(Instant::now() < deadline, "collector produced no windows");
            store.put_u64(key, key);
            store.get(key);
            key += 1;
        }
        collector.stop();
        let ring = collector.ring();
        let windows = ring.snapshot();
        let total_ops: u64 = windows.iter().map(|w| w.ops).sum();
        let stats = store.total_stats();
        // The collector's windows cover everything up to its last tick;
        // ops issued after that tick are simply not yet windowed.
        assert!(total_ops > 0);
        assert!(total_ops <= stats.point_ops());
        assert!(windows.iter().all(|w| !w.measured));
        // The heat log rides the same ticks: one heat window per
        // aggregate window, per-shard ops summing to the aggregate's
        // exactly (both sides of each tick read one snapshot pass).
        let heat = collector.heat_log();
        assert_eq!(heat.len(), windows.len());
        for (h, w) in heat.iter().zip(&windows) {
            assert_eq!(h.window, w.window);
            assert_eq!((h.start_ns, h.end_ns), (w.start_ns, w.end_ns));
            assert_eq!(h.shards.len(), 4, "one ShardHeat per store shard");
            assert_eq!(h.total_ops(), w.ops, "per-shard heat must telescope to the aggregate");
        }
        let latest = collector.heat_handle().lock().unwrap().clone();
        assert_eq!(latest.as_ref(), heat.last(), "handle tracks the last closed window");
        // The registered progress metrics read the same ring.
        let reg = poly_obs::MetricRegistry::new();
        collector.register_metrics(&reg);
        let snap = reg.snapshot();
        let read = |name: &str| match &snap.iter().find(|m| m.name == name).unwrap().series[0].value
        {
            poly_obs::Sample::U64(n) => *n,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(read("trace_windows_total"), collector.ring().pushed());
        assert_eq!(read("trace_last_window_ops"), windows.last().unwrap().ops);
        // Stop is idempotent and drop after stop is fine.
        collector.stop();
    }
}
