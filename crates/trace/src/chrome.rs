//! chrome://tracing (`trace_event`) export.
//!
//! Turns window timelines into the Trace Event JSON format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load: one
//! named track per cell, one complete (`"ph":"X"`) slice per window,
//! and a nested `lock-wait` child slice sized to the window's lock wait
//! (clamped to the window) — so contention phases read directly off the
//! flame view, and the slice `args` carry the exact numbers.

use poly_report::{fmt_f64, fmt_opt_f64, json_escape};

use crate::heat::HeatSample;
use crate::sample::WindowSample;

/// Builds a Trace Event JSON document from window timelines.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
    next_tid: u64,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracks added so far.
    pub fn tracks(&self) -> u64 {
        self.next_tid
    }

    /// Adds one cell's windows as a named track (e.g.
    /// `"kv-zipf/local/MUTEXEE/t4"`). Returns the track's tid.
    pub fn add_track(&mut self, name: &str, windows: &[WindowSample]) -> u64 {
        let tid = self.next_tid;
        self.next_tid += 1;
        // Metadata event: names the track in the viewer.
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_escape(name)
        ));
        for w in windows {
            let ts_us = us(w.start_ns);
            let dur_us = us(w.duration_ns());
            self.events.push(format!(
                "{{\"name\":\"window {}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\
                 \"dur\":{},\"args\":{{\"ops\":{},\"throughput\":{},\"p50_ns\":{},\
                 \"p99_ns\":{},\"lock_wait_ns\":{},\"lock_hold_ns\":{},\"watts\":{}}}}}",
                w.window,
                ts_us,
                dur_us,
                w.ops,
                fmt_f64(w.throughput()),
                w.p50_ns,
                w.p99_ns,
                w.lock_wait_ns,
                w.lock_hold_ns,
                fmt_opt_f64(w.watts()),
            ));
            if w.lock_wait_ns > 0 {
                // Nested child slice: lock-wait share of the window,
                // clamped so aggregate wait across threads (which can
                // exceed wall time) still renders inside its parent.
                let wait_us = us(w.lock_wait_ns.min(w.duration_ns()));
                self.events.push(format!(
                    "{{\"name\":\"lock-wait\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\
                     \"dur\":{},\"args\":{{\"lock_wait_ns\":{},\"share\":{}}}}}",
                    ts_us,
                    wait_us,
                    w.lock_wait_ns,
                    fmt_f64(w.lock_wait_share()),
                ));
            }
        }
        tid
    }

    /// Adds one cell's heat windows as one track *per shard* (named
    /// `"{base}/shard3"`): each shard's windows render as slices whose
    /// `ops` scale with that shard's share of the load, so a skewed
    /// keyspace reads directly off the flame view as one dense track
    /// among idle ones. Returns the number of tracks added (the widest
    /// window's shard count; shards missing from a narrower window
    /// render that window as zero ops).
    pub fn add_shard_tracks(&mut self, base: &str, heat: &[HeatSample]) -> u64 {
        let shard_count = heat.iter().map(|h| h.shards.len()).max().unwrap_or(0);
        for shard in 0..shard_count {
            let windows: Vec<WindowSample> = heat
                .iter()
                .map(|h| {
                    let s = h.shards.get(shard);
                    WindowSample {
                        window: h.window,
                        start_ns: h.start_ns,
                        end_ns: h.end_ns,
                        ops: s.map_or(0, |s| s.ops),
                        lock_wait_ns: s.map_or(0, |s| s.lock_wait_ns),
                        lock_hold_ns: s.map_or(0, |s| s.lock_hold_ns),
                        ..WindowSample::default()
                    }
                })
                .collect();
            self.add_track(&format!("{base}/shard{shard}"), &windows);
        }
        shard_count as u64
    }

    /// The complete Trace Event JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(e);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Trace Event timestamps are microseconds (fractions allowed).
fn us(ns: u64) -> String {
    fmt_f64(ns as f64 / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(i: u64, wait_ns: u64) -> WindowSample {
        WindowSample {
            window: i,
            start_ns: i * 50_000_000,
            end_ns: (i + 1) * 50_000_000,
            ops: 1_000,
            p50_ns: 800,
            p99_ns: 9_000,
            lock_wait_ns: wait_ns,
            lock_hold_ns: wait_ns / 2,
            pkg_uj: 1_000_000,
            dram_uj: 0,
            measured: true,
            freq_khz: None,
            ..WindowSample::default()
        }
    }

    #[test]
    fn emits_named_tracks_with_window_and_wait_slices() {
        let mut trace = ChromeTrace::new();
        let tid =
            trace.add_track("kv-zipf/local/MUTEXEE/t4", &[window(0, 5_000_000), window(1, 0)]);
        assert_eq!(tid, 0);
        assert_eq!(trace.tracks(), 1);
        let json = trace.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"kv-zipf/local/MUTEXEE/t4\""));
        // Window 0 at ts 0 µs, 50 ms duration.
        assert!(
            json.contains(
                "\"name\":\"window 0\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":50000"
            ),
            "{json}"
        );
        // Its lock-wait child: 5 ms inside the 50 ms window.
        assert!(
            json.contains(
                "\"name\":\"lock-wait\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":5000"
            ),
            "{json}"
        );
        // Window 1 waited 0 ns: no child slice at its ts (50000 µs).
        assert!(json.contains("\"name\":\"window 1\""));
        assert_eq!(json.matches("\"lock-wait\"").count(), 1);
    }

    #[test]
    fn wait_slices_clamp_to_their_window() {
        // 4 threads waiting the whole window: 200 ms of wait in a 50 ms
        // window must render as a 50 ms child, not escape the parent.
        let mut trace = ChromeTrace::new();
        trace.add_track("hot", &[window(0, 200_000_000)]);
        let json = trace.to_json();
        assert!(
            json.contains(
                "\"name\":\"lock-wait\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":50000"
            ),
            "{json}"
        );
        // The raw number still rides in args.
        assert!(json.contains("\"lock_wait_ns\":200000000"));
    }

    #[test]
    fn tracks_get_distinct_tids() {
        let mut trace = ChromeTrace::new();
        assert_eq!(trace.add_track("a", &[]), 0);
        assert_eq!(trace.add_track("b", &[]), 1);
        let json = trace.to_json();
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn shard_tracks_fan_one_heat_timeline_into_per_shard_flames() {
        use crate::heat::ShardHeat;
        let heat = vec![HeatSample {
            window: 0,
            start_ns: 0,
            end_ns: 50_000_000,
            shards: vec![
                ShardHeat { ops: 900, lock_wait_ns: 10_000_000, ..ShardHeat::default() },
                ShardHeat { ops: 100, ..ShardHeat::default() },
            ],
        }];
        let mut trace = ChromeTrace::new();
        assert_eq!(trace.add_shard_tracks("kv-zipf/local/MUTEXEE/t4", &heat), 2);
        assert_eq!(trace.tracks(), 2);
        let json = trace.to_json();
        assert!(json.contains("\"name\":\"kv-zipf/local/MUTEXEE/t4/shard0\""), "{json}");
        assert!(json.contains("\"name\":\"kv-zipf/local/MUTEXEE/t4/shard1\""), "{json}");
        assert!(json.contains("\"ops\":900"), "{json}");
        assert!(json.contains("\"ops\":100"), "{json}");
        // Only the contended shard gets a lock-wait child.
        assert_eq!(json.matches("\"lock-wait\"").count(), 1, "{json}");
    }

    #[test]
    fn empty_trace_is_a_valid_document() {
        assert_eq!(ChromeTrace::new().to_json(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
