//! Window accounting over cumulative marks — the virtual-clock core of
//! every collector.
//!
//! A [`Windower`] holds the *previous* tick's cumulative marks (ops,
//! latency histogram, service stats, energy reading) and turns each new
//! set of marks into one [`WindowSample`] of deltas. The caller supplies
//! the clock (`now_ns`), so tests drive windows deterministically and
//! the same logic serves the real collectors, which pass wall time.
//!
//! Because every tick's closing marks become the next tick's opening
//! marks, consecutive windows telescope: summing the `ops` (or µJ) of a
//! run's windows reproduces the difference between the run's first and
//! last marks *exactly* — the invariant the acceptance test pins.

use poly_meter::MeasuredReading;
use poly_store::{HistogramSnapshot, StatsSnapshot};

use crate::sample::WindowSample;

/// Turns cumulative marks into windows of deltas. See the module docs.
#[derive(Debug, Clone)]
pub struct Windower {
    window: u64,
    last_ns: u64,
    last_ops: u64,
    last_hist: HistogramSnapshot,
    last_stats: StatsSnapshot,
    last_measured: Option<MeasuredReading>,
    freq_khz: Option<u64>,
}

impl Windower {
    /// Opens window accounting at the measure window's start marks.
    ///
    /// `now_ns` is the caller's clock at the opening mark (0 for a run
    /// measured from its own start); `ops`/`hist` are the client-side
    /// cumulative op count and latency histogram (both usually empty at
    /// open); `stats` and `measured` are the service-side base marks the
    /// driver already takes. `freq_khz` stamps every window with the cap
    /// in force.
    pub fn open(
        now_ns: u64,
        ops: u64,
        hist: HistogramSnapshot,
        stats: StatsSnapshot,
        measured: Option<MeasuredReading>,
        freq_khz: Option<u64>,
    ) -> Self {
        Self {
            window: 0,
            last_ns: now_ns,
            last_ops: ops,
            last_hist: hist,
            last_stats: stats,
            last_measured: measured,
            freq_khz,
        }
    }

    /// Index the next produced window will carry.
    pub fn next_window(&self) -> u64 {
        self.window
    }

    /// Closes the current window at the given marks and opens the next.
    ///
    /// Latency percentiles come from the *window's own* histogram delta
    /// (`hist - last_hist`), not the run's cumulative one — the whole
    /// point of windowed telemetry. Energy is measured only when both
    /// this tick's and the previous tick's marks carried a reading;
    /// windows around a sampler hiccup degrade to unmetered instead of
    /// inventing joules.
    pub fn tick(
        &mut self,
        now_ns: u64,
        ops: u64,
        hist: HistogramSnapshot,
        stats: StatsSnapshot,
        measured: Option<MeasuredReading>,
    ) -> WindowSample {
        let wh = hist.since(&self.last_hist);
        let ws = stats.delta(&self.last_stats);
        let (pkg_uj, dram_uj, is_measured) = match (self.last_measured, measured) {
            (Some(a), Some(b)) => (
                b.package_uj.saturating_sub(a.package_uj),
                b.dram_uj.saturating_sub(a.dram_uj),
                true,
            ),
            _ => (0, 0, false),
        };
        let sample = WindowSample {
            window: self.window,
            start_ns: self.last_ns,
            end_ns: now_ns.max(self.last_ns),
            ops: ops.saturating_sub(self.last_ops),
            p50_ns: wh.percentile(50.0),
            p99_ns: wh.percentile(99.0),
            lock_wait_ns: ws.lock_wait_ns,
            lock_hold_ns: ws.lock_hold_ns,
            pkg_uj,
            dram_uj,
            measured: is_measured,
            freq_khz: self.freq_khz,
            gets: ws.gets,
            get_hits: ws.get_hits,
            evictions: ws.evictions,
            // delta() carries the closing snapshot's gauge, so this is
            // residency at window close.
            mem_bytes: ws.mem_bytes,
        };
        self.window += 1;
        self.last_ns = sample.end_ns;
        self.last_ops = ops;
        self.last_hist = hist;
        self.last_stats = stats;
        self.last_measured = measured;
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_store::{LatencyHistogram, ShardStats};

    fn reading(pkg: u64, dram: u64) -> MeasuredReading {
        MeasuredReading { package_uj: pkg, dram_uj: dram, samples: 1 }
    }

    #[test]
    fn windows_carry_deltas_not_totals() {
        let stats = ShardStats::new();
        let hist = LatencyHistogram::new();
        let mut w = Windower::open(
            0,
            0,
            hist.snapshot(),
            stats.snapshot(),
            Some(reading(1_000, 100)),
            Some(2_400_000),
        );

        // Window 0: 3 ops, two fast and one slow, 30 µJ pkg / 3 µJ dram.
        for ns in [500, 600, 40_000] {
            hist.record(ns);
        }
        stats.record_lock(7_000, 2_000);
        stats.record_get(true);
        stats.record_get(false);
        stats.record_evictions(2);
        stats.set_mem_bytes(4_096);
        let s0 =
            w.tick(50_000_000, 3, hist.snapshot(), stats.snapshot(), Some(reading(1_030, 103)));
        assert_eq!(s0.window, 0);
        assert_eq!((s0.start_ns, s0.end_ns), (0, 50_000_000));
        assert_eq!(s0.ops, 3);
        assert_eq!(s0.lock_wait_ns, 7_000);
        assert_eq!(s0.lock_hold_ns, 2_000);
        assert_eq!((s0.pkg_uj, s0.dram_uj, s0.measured), (30, 3, true));
        assert_eq!(s0.freq_khz, Some(2_400_000));
        // p99 reflects the slow sample's bucket, p50 the fast ones'.
        assert!(s0.p50_ns <= 1_024, "p50 {}", s0.p50_ns);
        assert!(s0.p99_ns >= 32_768, "p99 {}", s0.p99_ns);
        assert_eq!((s0.gets, s0.get_hits, s0.evictions), (2, 1, 2));
        assert_eq!(s0.mem_bytes, 4_096);
        assert_eq!(s0.hit_pct(), Some(50.0));

        // Window 1: one fast op only — percentiles must forget window
        // 0's slow sample (windowed, not cumulative).
        hist.record(700);
        stats.record_lock(100, 50);
        let s1 =
            w.tick(100_000_000, 4, hist.snapshot(), stats.snapshot(), Some(reading(1_040, 104)));
        assert_eq!(s1.window, 1);
        assert_eq!((s1.start_ns, s1.end_ns), (50_000_000, 100_000_000));
        assert_eq!(s1.ops, 1);
        assert!(s1.p99_ns <= 1_024, "window 1 p99 {} still sees window 0's tail", s1.p99_ns);
        assert_eq!((s1.pkg_uj, s1.dram_uj), (10, 1));
        assert_eq!(s1.lock_wait_ns, 100);
        // Cache counters are windowed too; the residency gauge persists.
        assert_eq!((s1.gets, s1.evictions), (0, 0));
        assert_eq!(s1.hit_pct(), None);
        assert_eq!(s1.mem_bytes, 4_096);
    }

    #[test]
    fn windows_telescope_to_the_aggregate() {
        let stats = ShardStats::new();
        let hist = LatencyHistogram::new();
        let mut w =
            Windower::open(0, 0, hist.snapshot(), stats.snapshot(), Some(reading(0, 0)), None);
        let mut ops = 0u64;
        let mut uj = 0u64;
        let mut windows = Vec::new();
        for i in 1..=7u64 {
            for _ in 0..i * 3 {
                hist.record(1_000);
                ops += 1;
            }
            uj += i * 11;
            windows.push(w.tick(
                i * 10_000_000,
                ops,
                hist.snapshot(),
                stats.snapshot(),
                Some(reading(uj, 0)),
            ));
        }
        assert_eq!(windows.iter().map(|s| s.ops).sum::<u64>(), ops);
        assert_eq!(windows.iter().map(|s| s.pkg_uj).sum::<u64>(), uj);
        // Contiguous: each window starts where the previous ended.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end_ns, pair[1].start_ns);
            assert_eq!(pair[0].window + 1, pair[1].window);
        }
    }

    #[test]
    fn sampler_gaps_degrade_to_unmetered_windows() {
        let stats = ShardStats::new();
        let hist = LatencyHistogram::new();
        let mut w =
            Windower::open(0, 0, hist.snapshot(), stats.snapshot(), Some(reading(100, 0)), None);
        // The sampler missed this tick: no reading, window unmetered.
        let s0 = w.tick(10, 1, hist.snapshot(), stats.snapshot(), None);
        assert!(!s0.measured);
        assert_eq!(s0.total_j(), None);
        // The reading returns: the window spanning the gap is unmetered
        // too (its opening mark is missing), never inventing a delta.
        let s1 = w.tick(20, 2, hist.snapshot(), stats.snapshot(), Some(reading(150, 0)));
        assert!(!s1.measured);
        // Fully bracketed again: measured resumes.
        let s2 = w.tick(30, 3, hist.snapshot(), stats.snapshot(), Some(reading(175, 0)));
        assert!(s2.measured);
        assert_eq!(s2.pkg_uj, 25);
    }

    #[test]
    fn clock_regressions_clamp_instead_of_wrapping() {
        let stats = ShardStats::new();
        let hist = LatencyHistogram::new();
        let mut w = Windower::open(1_000, 5, hist.snapshot(), stats.snapshot(), None, None);
        // now_ns and ops both behind the opening marks (restarted
        // counters): the window is empty, not enormous.
        let s = w.tick(500, 3, hist.snapshot(), stats.snapshot(), None);
        assert_eq!(s.duration_ns(), 0);
        assert_eq!(s.ops, 0);
    }
}
