//! One telemetry window and its fixed-width word encoding.

/// Number of `u64` words a [`WindowSample`] encodes to — the unit the
/// lock-free ring stores and the STATS v2 frame carries. Alias of
/// [`WindowSample::WIRE_WORDS`], kept for the existing `[u64; WORDS]`
/// signatures.
pub const WORDS: usize = WindowSample::WIRE_WORDS;

/// One window of a run's telemetry: what happened between two collector
/// ticks.
///
/// Every field is a *delta over the window* (ops completed in it, lock
/// wait accumulated in it, joules drawn in it), not a cumulative total —
/// consecutive windows telescope, so summing a run's windows reproduces
/// its aggregate report exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowSample {
    /// Window index within the run (0-based, contiguous).
    pub window: u64,
    /// Window start, nanoseconds since the measure window opened.
    pub start_ns: u64,
    /// Window end, nanoseconds since the measure window opened.
    pub end_ns: u64,
    /// Operations completed in the window.
    pub ops: u64,
    /// Median latency of the window's own samples, nanoseconds (0 when
    /// the window saw no samples). Client request latency for driver
    /// collectors, service time for store-side collectors.
    pub p50_ns: u64,
    /// 99th-percentile latency of the window's samples, nanoseconds.
    pub p99_ns: u64,
    /// Shard-lock wait accumulated in the window, nanoseconds (all
    /// shards; can exceed the window's duration under contention).
    pub lock_wait_ns: u64,
    /// Shard-lock hold accumulated in the window, nanoseconds.
    pub lock_hold_ns: u64,
    /// Measured package-domain micro-joules drawn in the window
    /// (meaningful only when [`WindowSample::measured`]).
    pub pkg_uj: u64,
    /// Measured DRAM-domain micro-joules drawn in the window.
    pub dram_uj: u64,
    /// Whether the energy fields are real RAPL measurements (both the
    /// opening and closing marks carried a reading).
    pub measured: bool,
    /// Frequency cap in force during the window, kHz (`None` = base).
    pub freq_khz: Option<u64>,
    /// GET requests served in the window.
    pub gets: u64,
    /// GET requests that found a live (unexpired) entry in the window.
    pub get_hits: u64,
    /// Entries evicted by the CLOCK hand in the window.
    pub evictions: u64,
    /// Resident value bytes at window close (a gauge, unlike the other
    /// fields — it reports where the cache ended, not what it did).
    pub mem_bytes: u64,
}

impl WindowSample {
    /// Single source of truth for the wire/ring word count. Encoders,
    /// decoders, and frame-size arithmetic must all derive from this —
    /// never restate the literal.
    pub const WIRE_WORDS: usize = 16;

    /// Window duration in nanoseconds (saturating; 0 for a degenerate
    /// window).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Throughput over the window, ops/s (0 for a degenerate window).
    pub fn throughput(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            return 0.0;
        }
        self.ops as f64 / (d as f64 * 1e-9)
    }

    /// Measured package joules over the window, `None` when unmetered.
    pub fn pkg_j(&self) -> Option<f64> {
        self.measured.then_some(self.pkg_uj as f64 * 1e-6)
    }

    /// Measured DRAM joules over the window, `None` when unmetered.
    pub fn dram_j(&self) -> Option<f64> {
        self.measured.then_some(self.dram_uj as f64 * 1e-6)
    }

    /// Measured joules over the window (package + DRAM), `None` when
    /// unmetered.
    pub fn total_j(&self) -> Option<f64> {
        self.measured.then(|| (self.pkg_uj + self.dram_uj) as f64 * 1e-6)
    }

    /// Average measured power over the window in watts, `None` when
    /// unmetered or the window is degenerate.
    pub fn watts(&self) -> Option<f64> {
        let d = self.duration_ns();
        if !self.measured || d == 0 {
            return None;
        }
        Some((self.pkg_uj + self.dram_uj) as f64 * 1e-6 / (d as f64 * 1e-9))
    }

    /// GET hit rate over the window as a percentage, `None` before the
    /// first GET (a window with no lookups has no hit rate, not a 0% one).
    pub fn hit_pct(&self) -> Option<f64> {
        (self.gets > 0).then(|| self.get_hits as f64 * 100.0 / self.gets as f64)
    }

    /// Lock-wait share of the window: thread-seconds spent waiting per
    /// wall-clock second (0..=threads — exceeds 1.0 when more than one
    /// thread waits at once). 0 for a degenerate window.
    pub fn lock_wait_share(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            return 0.0;
        }
        self.lock_wait_ns as f64 / d as f64
    }

    /// Encodes the sample as [`WORDS`] `u64` words — the ring-slot and
    /// wire representation. `freq_khz` uses `u64::MAX` for `None` (a cap
    /// of 2^64-1 kHz is not a frequency), `measured` is 0/1.
    pub fn to_words(&self) -> [u64; WORDS] {
        [
            self.window,
            self.start_ns,
            self.end_ns,
            self.ops,
            self.p50_ns,
            self.p99_ns,
            self.lock_wait_ns,
            self.lock_hold_ns,
            self.pkg_uj,
            self.dram_uj,
            u64::from(self.measured),
            self.freq_khz.unwrap_or(u64::MAX),
            self.gets,
            self.get_hits,
            self.evictions,
            self.mem_bytes,
        ]
    }

    /// Decodes a sample from its word representation (inverse of
    /// [`WindowSample::to_words`]; any nonzero word reads as
    /// `measured = true`).
    pub fn from_words(w: &[u64; WORDS]) -> Self {
        Self {
            window: w[0],
            start_ns: w[1],
            end_ns: w[2],
            ops: w[3],
            p50_ns: w[4],
            p99_ns: w[5],
            lock_wait_ns: w[6],
            lock_hold_ns: w[7],
            pkg_uj: w[8],
            dram_uj: w[9],
            measured: w[10] != 0,
            freq_khz: (w[11] != u64::MAX).then_some(w[11]),
            gets: w[12],
            get_hits: w[13],
            evictions: w[14],
            mem_bytes: w[15],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WindowSample {
        WindowSample {
            window: 3,
            start_ns: 150_000_000,
            end_ns: 200_000_000,
            ops: 12_500,
            p50_ns: 800,
            p99_ns: 12_000,
            lock_wait_ns: 9_000_000,
            lock_hold_ns: 4_000_000,
            pkg_uj: 1_500_000,
            dram_uj: 250_000,
            measured: true,
            freq_khz: Some(1_200_000),
            gets: 8_000,
            get_hits: 6_000,
            evictions: 40,
            mem_bytes: 1 << 20,
        }
    }

    #[test]
    fn wire_words_guards_encoding_drift() {
        // Adding a WindowSample field without bumping WIRE_WORDS (and the
        // wire protocol version policy) must fail here, not in a decoder
        // on the other end of a socket.
        assert_eq!(WORDS, WindowSample::WIRE_WORDS);
        assert_eq!(sample().to_words().len(), WindowSample::WIRE_WORDS);
        assert_eq!(WindowSample::WIRE_WORDS, 16, "bump deliberately, with the STATS frame");
    }

    #[test]
    fn words_round_trip() {
        for s in [
            sample(),
            WindowSample::default(),
            WindowSample { measured: false, freq_khz: None, ..sample() },
            WindowSample { freq_khz: Some(0), ..sample() },
        ] {
            assert_eq!(WindowSample::from_words(&s.to_words()), s);
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        assert_eq!(s.duration_ns(), 50_000_000);
        assert!((s.throughput() - 250_000.0).abs() < 1e-6);
        assert_eq!(s.pkg_j(), Some(1.5));
        assert_eq!(s.dram_j(), Some(0.25));
        assert_eq!(s.total_j(), Some(1.75));
        // 1.75 J over 50 ms = 35 W.
        assert!((s.watts().unwrap() - 35.0).abs() < 1e-9);
        assert!((s.lock_wait_share() - 0.18).abs() < 1e-12);
        assert_eq!(s.hit_pct(), Some(75.0));
        assert_eq!(WindowSample { gets: 0, ..s }.hit_pct(), None, "no lookups, no hit rate");
    }

    #[test]
    fn unmetered_and_degenerate_windows_stay_defined() {
        let s = WindowSample { measured: false, ..sample() };
        assert_eq!(s.pkg_j(), None);
        assert_eq!(s.total_j(), None);
        assert_eq!(s.watts(), None);
        let z = WindowSample { end_ns: 10, start_ns: 10, ..sample() };
        assert_eq!(z.duration_ns(), 0);
        assert_eq!(z.throughput(), 0.0);
        assert_eq!(z.watts(), None);
        assert_eq!(z.lock_wait_share(), 0.0);
    }
}
