//! The lock-free telemetry ring.
//!
//! One writer (the collector) pushes [`WindowSample`]s; any number of
//! readers — the STATS v2 server path, `store top`, the timeline flush —
//! read without blocking the writer. Each slot is a seqlock over the
//! sample's word encoding: the writer marks the slot odd, stores the
//! words, then marks it even with the slot's generation; a reader
//! re-checks the sequence after copying and discards torn reads. All
//! slot words are atomics, so a torn read is merely *rejected*, never
//! undefined.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::sample::{WindowSample, WORDS};

struct Slot {
    /// `2 * push_index + 1` while the writer is mid-store,
    /// `2 * push_index + 2` once the words are complete, 0 when never
    /// written. Encoding the push index (not just odd/even) lets a
    /// reader detect a slot that was *overwritten* by a later lap, not
    /// only one that is mid-write.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn empty() -> Self {
        Self { seq: AtomicU64::new(0), words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Copies the slot out if it holds push `idx`'s complete sample.
    fn read(&self, idx: u64) -> Option<WindowSample> {
        let want = 2 * idx + 2;
        if self.seq.load(Ordering::Acquire) != want {
            return None;
        }
        let mut w = [0u64; WORDS];
        for (dst, src) in w.iter_mut().zip(&self.words) {
            *dst = src.load(Ordering::Relaxed);
        }
        // Acquire re-check: the copy above is only coherent if no writer
        // touched the slot while it ran.
        if self.seq.load(Ordering::Acquire) != want {
            return None;
        }
        Some(WindowSample::from_words(&w))
    }
}

/// A bounded ring of the most recent [`WindowSample`]s, single-writer /
/// many-reader, never blocking either side.
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Total samples ever pushed; the next push takes this index.
    head: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRing {
    /// A ring holding the last `capacity` samples (floored at 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self { slots: (0..cap).map(|_| Slot::empty()).collect(), head: AtomicU64::new(0) }
    }

    /// Maximum samples retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total samples ever pushed (not the retained count).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Whether nothing was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.pushed() == 0
    }

    /// Pushes one sample, overwriting the oldest once full.
    ///
    /// Single-writer: collectors serialize their pushes (one collector
    /// thread per ring). Concurrent pushers would not corrupt memory —
    /// every word is atomic — but could interleave a slot's seq/words.
    pub fn push(&self, sample: &WindowSample) {
        let idx = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        slot.seq.store(2 * idx + 1, Ordering::Release);
        for (dst, src) in slot.words.iter().zip(sample.to_words()) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(2 * idx + 2, Ordering::Release);
        self.head.store(idx + 1, Ordering::Release);
    }

    /// The most recent complete sample, `None` when empty (or when the
    /// only candidates are currently being overwritten).
    pub fn latest(&self) -> Option<WindowSample> {
        let head = self.head.load(Ordering::Acquire);
        let floor = head.saturating_sub(self.slots.len() as u64);
        // Newest first; an index can be torn only if the writer lapped
        // into it since the head load.
        (floor..head)
            .rev()
            .find_map(|idx| self.slots[(idx % self.slots.len() as u64) as usize].read(idx))
    }

    /// The retained samples, oldest first, skipping any slot torn by a
    /// concurrent overwrite. With the writer stopped this is exactly the
    /// last `min(pushed, capacity)` windows in order.
    pub fn snapshot(&self) -> Vec<WindowSample> {
        let head = self.head.load(Ordering::Acquire);
        let floor = head.saturating_sub(self.slots.len() as u64);
        (floor..head)
            .filter_map(|idx| self.slots[(idx % self.slots.len() as u64) as usize].read(idx))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(i: u64) -> WindowSample {
        WindowSample {
            window: i,
            start_ns: i * 1_000,
            end_ns: (i + 1) * 1_000,
            ops: 10 + i,
            measured: i.is_multiple_of(2),
            freq_khz: i.is_multiple_of(3).then_some(1_200_000),
            ..WindowSample::default()
        }
    }

    #[test]
    fn push_and_read_in_order() {
        let ring = TraceRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.latest(), None);
        assert_eq!(ring.snapshot(), Vec::new());
        for i in 0..5 {
            ring.push(&window(i));
        }
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.latest(), Some(window(4)));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        for (i, s) in snap.iter().enumerate() {
            assert_eq!(*s, window(i as u64));
        }
    }

    #[test]
    fn overwrites_keep_the_newest() {
        let ring = TraceRing::new(4);
        for i in 0..11 {
            ring.push(&window(i));
        }
        assert_eq!(ring.pushed(), 11);
        let snap = ring.snapshot();
        assert_eq!(snap.iter().map(|s| s.window).collect::<Vec<_>>(), [7, 8, 9, 10]);
        assert_eq!(ring.latest(), Some(window(10)));
    }

    #[test]
    fn capacity_is_floored_at_one() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(&window(0));
        ring.push(&window(1));
        assert_eq!(ring.snapshot(), vec![window(1)]);
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_sample() {
        use std::sync::atomic::AtomicBool;

        // A sample whose words are all tied to its index: any mix of two
        // writes is detectable.
        fn marked(i: u64) -> WindowSample {
            WindowSample {
                window: i,
                start_ns: i,
                end_ns: 2 * i,
                ops: 3 * i,
                p50_ns: 4 * i,
                p99_ns: 5 * i,
                lock_wait_ns: 6 * i,
                lock_hold_ns: 7 * i,
                pkg_uj: 8 * i,
                dram_uj: 9 * i,
                measured: false,
                freq_khz: Some(10 * i),
                gets: 11 * i,
                get_hits: 12 * i,
                evictions: 13 * i,
                mem_bytes: 14 * i,
            }
        }

        let ring = TraceRing::new(2); // tiny: maximize overwrite races
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        let mut seen = 0u64;
                        while !stop.load(Ordering::Acquire) {
                            for s in ring.snapshot().into_iter().chain(ring.latest()) {
                                assert_eq!(s, marked(s.window), "torn sample escaped: {s:?}");
                                seen += 1;
                            }
                        }
                        seen
                    })
                })
                .collect();
            for i in 0..20_000 {
                ring.push(&marked(i));
            }
            stop.store(true, Ordering::Release);
            let seen: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
            assert!(seen > 0, "readers never observed a sample");
        });
    }
}
