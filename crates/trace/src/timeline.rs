//! The `*.timeline.jsonl` sink: one JSON line per window, rendered
//! against `poly-report`'s canonical [`TIMELINE`] registry.
//!
//! Both sweep families write this schema — the native `store` CLI from
//! real [`WindowSample`]s, the simulated `scenarios` CLI from one
//! whole-run window per cell (with the columns a simulation cannot
//! window set to `null`) — so timeline consumers parse one shape.

use std::io::{self, Write};

use poly_report::columns::TIMELINE;
use poly_report::Value;

use crate::sample::WindowSample;

/// The cell identity stamped onto every one of its timeline rows (the
/// join key back to the aggregate report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineCell {
    /// Scenario name.
    pub scenario: String,
    /// Workload label.
    pub workload: String,
    /// Transport label (`local`, `tcp`, `sim`).
    pub transport: String,
    /// Serving architecture (`threads`/`epoll` for tcp, `none` for
    /// local, `sim` for simulated cells).
    pub server: String,
    /// Lock label.
    pub lock: String,
    /// Shard count.
    pub shards: u64,
    /// Client thread count.
    pub threads: u64,
    /// The cell's seed.
    pub seed: u64,
}

/// One timeline row: a window with every per-window column optional, so
/// emitters that cannot produce a column (the simulator's latencies, an
/// unmetered host's joules) write `null` instead of a different schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Window index within the cell.
    pub window: u64,
    /// Window start, ns since the cell's measure window opened.
    pub start_ns: u64,
    /// Window end, ns.
    pub end_ns: u64,
    /// Operations completed in the window.
    pub ops: u64,
    /// Throughput over the window, ops/s.
    pub throughput: f64,
    /// Median latency in the window, ns (`None` when unwindowable).
    pub p50_ns: Option<u64>,
    /// p99 latency in the window, ns.
    pub p99_ns: Option<u64>,
    /// Lock wait accumulated in the window, ns.
    pub lock_wait_ns: Option<u64>,
    /// Lock hold accumulated in the window, ns.
    pub lock_hold_ns: Option<u64>,
    /// Measured package joules in the window.
    pub measured_pkg_j: Option<f64>,
    /// Measured DRAM joules in the window.
    pub measured_dram_j: Option<f64>,
    /// Average measured watts over the window.
    pub measured_w: Option<f64>,
    /// Frequency cap in force, kHz.
    pub freq_khz: Option<u64>,
    /// Resident value bytes at window close (`None` for emitters without
    /// a byte-value store — e.g. simulated cells).
    pub mem_bytes: Option<u64>,
    /// GET hit rate over the window, percent (`None` when the window saw
    /// no GETs, or for emitters without one).
    pub hit_pct: Option<f64>,
    /// Entries evicted by the CLOCK hand in the window.
    pub evictions: Option<u64>,
    /// Shard skew over the window: hottest shard's point-ops over the
    /// mean shard's (`None` for emitters without a per-shard sensor —
    /// simulated cells — or idle windows).
    pub shard_skew: Option<f64>,
    /// The hottest shard's share of the window's point ops, percent.
    pub top_shard_pct: Option<f64>,
}

impl TimelineRow {
    /// A row from a native collector window (fills every column the
    /// sample carries; measured columns `null` on unmetered runs).
    pub fn from_window(w: &WindowSample) -> Self {
        Self {
            window: w.window,
            start_ns: w.start_ns,
            end_ns: w.end_ns,
            ops: w.ops,
            throughput: w.throughput(),
            p50_ns: Some(w.p50_ns),
            p99_ns: Some(w.p99_ns),
            lock_wait_ns: Some(w.lock_wait_ns),
            lock_hold_ns: Some(w.lock_hold_ns),
            measured_pkg_j: w.pkg_j(),
            measured_dram_j: w.dram_j(),
            measured_w: w.watts(),
            freq_khz: w.freq_khz,
            mem_bytes: Some(w.mem_bytes),
            hit_pct: w.hit_pct(),
            evictions: Some(w.evictions),
            // The aggregate sample cannot see shards; callers with a
            // matching HeatSample join the skew in via with_heat.
            shard_skew: None,
            top_shard_pct: None,
        }
    }

    /// Joins a matching [`HeatSample`](crate::HeatSample)'s skew
    /// summaries into the row (the window indices must agree — they do
    /// when both came from the same collector tick).
    pub fn with_heat(mut self, heat: &crate::HeatSample) -> Self {
        self.shard_skew = heat.shard_skew();
        self.top_shard_pct = heat.top_shard_pct();
        self
    }

    /// Renders the row as one timeline JSONL record for `cell`.
    pub fn to_json(&self, cell: &TimelineCell) -> String {
        TIMELINE.row_json(&[
            Value::Str(&cell.scenario),
            Value::Str(&cell.workload),
            Value::Str(&cell.transport),
            Value::Str(&cell.server),
            Value::Str(&cell.lock),
            Value::U64(cell.shards),
            Value::U64(cell.threads),
            Value::U64(cell.seed),
            Value::U64(self.window),
            Value::U64(self.start_ns),
            Value::U64(self.end_ns),
            Value::U64(self.ops),
            Value::F64(self.throughput),
            Value::OptU64(self.p50_ns),
            Value::OptU64(self.p99_ns),
            Value::OptU64(self.lock_wait_ns),
            Value::OptU64(self.lock_hold_ns),
            Value::OptF64(self.measured_pkg_j),
            Value::OptF64(self.measured_dram_j),
            Value::OptF64(self.measured_w),
            Value::OptU64(self.freq_khz),
            Value::OptU64(self.mem_bytes),
            Value::OptF64(self.hit_pct),
            Value::OptU64(self.evictions),
            Value::OptF64(self.shard_skew),
            Value::OptF64(self.top_shard_pct),
        ])
    }
}

/// Writes one cell's windows as timeline JSONL records (heat columns
/// `null`; use [`write_timeline_with_heat`] when heat windows exist).
pub fn write_timeline<W: Write>(
    w: &mut W,
    cell: &TimelineCell,
    windows: &[WindowSample],
) -> io::Result<()> {
    write_timeline_with_heat(w, cell, windows, &[])
}

/// Writes one cell's windows as timeline JSONL records, joining each
/// window's skew summaries from the heat window with the matching
/// index (windows without a heat match render the heat columns `null`).
pub fn write_timeline_with_heat<W: Write>(
    w: &mut W,
    cell: &TimelineCell,
    windows: &[WindowSample],
    heat: &[crate::HeatSample],
) -> io::Result<()> {
    for sample in windows {
        let mut row = TimelineRow::from_window(sample);
        if let Some(h) = heat.iter().find(|h| h.window == sample.window) {
            row = row.with_heat(h);
        }
        writeln!(w, "{}", row.to_json(cell))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> TimelineCell {
        TimelineCell {
            scenario: "kv-zipf".into(),
            workload: "kv(zipf)".into(),
            transport: "local".into(),
            server: "none".into(),
            lock: "MUTEXEE".into(),
            shards: 16,
            threads: 4,
            seed: 42,
        }
    }

    #[test]
    fn rows_render_the_canonical_schema() {
        let w = WindowSample {
            window: 2,
            start_ns: 100_000_000,
            end_ns: 150_000_000,
            ops: 5_000,
            p50_ns: 1_024,
            p99_ns: 8_192,
            lock_wait_ns: 3_000_000,
            lock_hold_ns: 1_000_000,
            pkg_uj: 2_000_000,
            dram_uj: 0,
            measured: true,
            freq_khz: Some(1_200_000),
            gets: 4_000,
            get_hits: 3_000,
            evictions: 12,
            mem_bytes: 65_536,
        };
        let line = TimelineRow::from_window(&w).to_json(&cell());
        assert_eq!(
            line,
            "{\"scenario\":\"kv-zipf\",\"workload\":\"kv(zipf)\",\"transport\":\"local\",\
             \"server\":\"none\",\
             \"lock\":\"MUTEXEE\",\"shards\":16,\"threads\":4,\"seed\":42,\"window\":2,\
             \"start_ns\":100000000,\"end_ns\":150000000,\"ops\":5000,\"throughput\":100000,\
             \"p50_ns\":1024,\"p99_ns\":8192,\"lock_wait_ns\":3000000,\"lock_hold_ns\":1000000,\
             \"measured_pkg_j\":2,\"measured_dram_j\":0,\"measured_w\":40,\
             \"freq_khz\":1200000,\"mem_bytes\":65536,\"hit_pct\":75,\"evictions\":12,\
             \"shard_skew\":null,\"top_shard_pct\":null}"
        );
        // Joining a heat window fills the skew columns.
        let heat = crate::HeatSample {
            window: 2,
            start_ns: 100_000_000,
            end_ns: 150_000_000,
            shards: vec![
                crate::ShardHeat { ops: 3_000, ..Default::default() },
                crate::ShardHeat { ops: 2_000, ..Default::default() },
            ],
        };
        let joined = TimelineRow::from_window(&w).with_heat(&heat).to_json(&cell());
        assert!(joined.ends_with("\"shard_skew\":1.2,\"top_shard_pct\":60}"), "{joined}");
    }

    #[test]
    fn unmetered_windows_render_null_measured_columns() {
        let w = WindowSample { end_ns: 1_000, ops: 1, ..WindowSample::default() };
        let line = TimelineRow::from_window(&w).to_json(&cell());
        assert!(line.contains("\"measured_pkg_j\":null,\"measured_dram_j\":null"));
        assert!(line.contains("\"measured_w\":null,\"freq_khz\":null"));
        // Native rows always window latencies (0 when no samples).
        assert!(line.contains("\"p50_ns\":0,\"p99_ns\":0"));
        // A window with no GETs has no hit rate; the gauges still render.
        assert!(line.contains("\"mem_bytes\":0,\"hit_pct\":null,\"evictions\":0"));
    }

    #[test]
    fn write_timeline_emits_one_line_per_window() {
        let windows: Vec<WindowSample> = (0..3)
            .map(|i| WindowSample {
                window: i,
                start_ns: i * 1_000,
                end_ns: (i + 1) * 1_000,
                ops: 10,
                ..WindowSample::default()
            })
            .collect();
        let mut out = Vec::new();
        write_timeline(&mut out, &cell(), &windows).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 3);
        for (i, line) in text.lines().enumerate() {
            assert!(line.contains(&format!("\"window\":{i}")), "{line}");
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
