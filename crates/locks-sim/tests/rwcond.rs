//! Reader-writer lock and condition-variable behavior on the simulator.

use poly_locks_sim::{
    CondSm, LockKind, LockParams, RwAcqSm, RwMode, RwRelSm, SimCondvar, SimLock, SimRwLock, Step,
};
use poly_sim::{MachineConfig, Op, OpResult, PinPolicy, Program, RunSpec, SimBuilder, ThreadRt};

/// Read/write stress over one rwlock; writers assert exclusivity through
/// the CS tracker, readers count concurrent readers through a plain shared
/// cell (they may overlap each other, never a writer).
struct RwStress {
    rw: SimRwLock,
    write_every: u64,
    iter: u64,
    phase: RwPhase,
    mode: RwMode,
}

enum RwPhase {
    Init,
    Acquiring(RwAcqSm),
    InCs,
    Releasing(RwRelSm),
}

impl Program for RwStress {
    fn resume(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Op {
        let mut last = last;
        loop {
            match &mut self.phase {
                RwPhase::Init => {
                    self.iter += 1;
                    self.mode = if self.iter.is_multiple_of(self.write_every) {
                        RwMode::Write
                    } else {
                        RwMode::Read
                    };
                    self.phase = RwPhase::Acquiring(self.rw.begin_acquire(rt.tid, self.mode));
                    last = OpResult::Started;
                }
                RwPhase::Acquiring(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Acquired(_) => {
                        if self.mode == RwMode::Write {
                            rt.enter_cs(self.rw.key());
                        }
                        self.phase = RwPhase::InCs;
                        return Op::Work(500);
                    }
                    Step::Released => unreachable!(),
                },
                RwPhase::InCs => {
                    if self.mode == RwMode::Write {
                        rt.exit_cs(self.rw.key());
                    }
                    self.phase = RwPhase::Releasing(self.rw.begin_release(rt.tid, self.mode));
                    last = OpResult::Started;
                }
                RwPhase::Releasing(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Released => {
                        rt.counters.ops += 1;
                        if self.mode == RwMode::Write {
                            rt.counters.aux[0] += 1;
                        }
                        self.phase = RwPhase::Init;
                        last = OpResult::Started;
                    }
                    Step::Acquired(_) => unreachable!(),
                },
            }
        }
    }
}

#[test]
fn rwlock_supports_mixed_readers_and_writers() {
    for kind in [LockKind::Ttas, LockKind::Mutexee, LockKind::Mutex] {
        let mut b = SimBuilder::new(MachineConfig::tiny());
        let rw = SimRwLock::alloc(&mut b, kind, 4, LockParams::default());
        for _ in 0..4 {
            b.spawn(
                Box::new(RwStress {
                    rw: rw.clone(),
                    write_every: 10,
                    iter: 0,
                    phase: RwPhase::Init,
                    mode: RwMode::Read,
                }),
                PinPolicy::PaperOrder,
            );
        }
        let r = b.run(RunSpec { duration: 20_000_000, warmup: 2_000_000 });
        assert!(r.total_ops > 1_000, "{}: rwlock stalled, {} ops", kind.label(), r.total_ops);
        let writes: u64 = r.threads.iter().map(|t| t.aux[0]).sum();
        assert!(writes > 50, "{}: writers starved, {} writes", kind.label(), writes);
    }
}

/// A bounded single-slot queue: producer and consumers coordinate with a
/// mutex + condvar, like RocksDB's write queue.
struct CondPingPong {
    lock: SimLock,
    cond: SimCondvar,
    slot: poly_sim::LineId,
    producer: bool,
    phase: CondPhase,
}

enum CondPhase {
    Init,
    Acquiring(poly_locks_sim::AcqSm),
    CheckSlot,
    Waiting(CondSm),
    FillOrDrain,
    Releasing(poly_locks_sim::RelSm),
    Signaling(CondSm),
}

impl Program for CondPingPong {
    fn resume(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Op {
        let mut last = last;
        loop {
            match &mut self.phase {
                CondPhase::Init => {
                    self.phase = CondPhase::Acquiring(self.lock.begin_acquire(rt.tid));
                    last = OpResult::Started;
                }
                CondPhase::Acquiring(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Acquired(_) => {
                        self.phase = CondPhase::CheckSlot;
                        return Op::Load(self.slot);
                    }
                    Step::Released => unreachable!(),
                },
                CondPhase::CheckSlot => {
                    let v = last.value();
                    let ready = if self.producer { v == 0 } else { v == 1 };
                    if ready {
                        self.phase = CondPhase::FillOrDrain;
                        return Op::Rmw(
                            self.slot,
                            poly_sim::RmwKind::Store(u64::from(self.producer)),
                        );
                    }
                    self.phase = CondPhase::Waiting(self.cond.begin_wait(&self.lock, rt.tid));
                    last = OpResult::Started;
                }
                CondPhase::Waiting(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Acquired(_) => {
                        self.phase = CondPhase::CheckSlot;
                        return Op::Load(self.slot);
                    }
                    Step::Released => unreachable!(),
                },
                CondPhase::FillOrDrain => {
                    rt.counters.ops += 1;
                    self.phase = CondPhase::Releasing(self.lock.begin_release(rt.tid));
                    last = OpResult::Started;
                }
                CondPhase::Releasing(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Released => {
                        self.phase = CondPhase::Signaling(self.cond.begin_broadcast());
                        last = OpResult::Started;
                    }
                    Step::Acquired(_) => unreachable!(),
                },
                CondPhase::Signaling(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Released => {
                        self.phase = CondPhase::Init;
                        last = OpResult::Started;
                    }
                    Step::Acquired(_) => unreachable!(),
                },
            }
        }
    }
}

#[test]
fn condvar_ping_pong_makes_progress_without_lost_wakeups() {
    for kind in [LockKind::Mutex, LockKind::Mutexee] {
        let mut b = SimBuilder::new(MachineConfig::tiny());
        let lock = SimLock::alloc(&mut b, kind, 2, LockParams::default());
        let cond = SimCondvar::alloc(&mut b);
        let slot = b.alloc_line(0);
        for producer in [true, false] {
            b.spawn(
                Box::new(CondPingPong {
                    lock: lock.clone(),
                    cond,
                    slot,
                    producer,
                    phase: CondPhase::Init,
                }),
                PinPolicy::PaperOrder,
            );
        }
        let r = b.run(RunSpec { duration: 40_000_000, warmup: 4_000_000 });
        // Strict alternation: producer and consumer op counts within 1.
        let p = r.threads[0].ops as i64;
        let c = r.threads[1].ops as i64;
        assert!((p - c).abs() <= 1, "{}: producer {p} consumer {c}", kind.label());
        assert!(p > 200, "{}: ping-pong stalled at {p} rounds", kind.label());
    }
}
