//! Cross-algorithm behavioral tests on the simulator.

use poly_locks_sim::{
    Dist, LockKind, LockParams, LockStress, LockStressConfig, MutexeeMode, MutexeeParams, SimLock,
    SsMode, SsShared,
};
use poly_sim::{MachineConfig, PinPolicy, RunSpec, SimBuilder, SimReport};

fn stress(kind: LockKind, threads: usize, cs: u64, duration: u64) -> SimReport {
    stress_with(kind, threads, cs, duration, LockParams::default())
}

fn stress_with(
    kind: LockKind,
    threads: usize,
    cs: u64,
    duration: u64,
    params: LockParams,
) -> SimReport {
    let mut b = SimBuilder::new(MachineConfig::tiny());
    let lock = SimLock::alloc(&mut b, kind, threads, params);
    for _ in 0..threads {
        b.spawn(
            Box::new(LockStress::new(
                vec![lock.clone()],
                LockStressConfig { cs: Dist::Fixed(cs), non_cs: Dist::Fixed(100) },
            )),
            PinPolicy::PaperOrder,
        );
    }
    b.run(RunSpec { duration, warmup: duration / 10 })
}

#[test]
fn all_locks_preserve_mutual_exclusion_and_progress() {
    // The CsTracker inside the engine panics on any overlap, so a passing
    // run *is* the mutual-exclusion proof.
    for kind in LockKind::ALL {
        let r = stress(kind, 4, 800, 20_000_000);
        assert!(
            r.total_ops > 500,
            "{} made too little progress: {} ops",
            kind.label(),
            r.total_ops
        );
        let acquires: u64 = r.threads.iter().map(|t| t.acquires).sum();
        assert!(acquires >= r.total_ops, "{}: every op acquires", kind.label());
    }
}

#[test]
fn fifo_locks_are_fair_under_contention() {
    for kind in [LockKind::Ticket, LockKind::Mcs, LockKind::Clh] {
        let r = stress(kind, 4, 1000, 30_000_000);
        let ops: Vec<u64> = r.threads.iter().map(|t| t.ops).collect();
        let min = *ops.iter().min().unwrap() as f64;
        let max = *ops.iter().max().unwrap() as f64;
        assert!(max / min < 1.25, "{} should be fair, got per-thread ops {ops:?}", kind.label());
    }
}

#[test]
fn mutex_sleeps_under_contention_mutexee_mostly_does_not() {
    let mutex = stress(LockKind::Mutex, 4, 1500, 30_000_000);
    let mutexee = stress(LockKind::Mutexee, 4, 1500, 30_000_000);
    assert!(
        mutex.futex.waits > 100,
        "MUTEX must use futex under contention, waits = {}",
        mutex.futex.waits
    );
    let mutex_waits_per_op = mutex.futex.waits as f64 / mutex.total_ops as f64;
    let mutexee_waits_per_op = mutexee.futex.waits as f64 / mutexee.total_ops as f64;
    assert!(
        mutexee_waits_per_op < mutex_waits_per_op / 2.0,
        "MUTEXEE must cut futex traffic: {mutexee_waits_per_op:.4} vs {mutex_waits_per_op:.4}"
    );
}

#[test]
fn mutexee_beats_mutex_on_short_critical_sections() {
    // The paper's headline micro-result (Figure 8): for CS below ~4000
    // cycles, MUTEX wastes time in purposeless sleep/wake cycles.
    let mutex = stress(LockKind::Mutex, 4, 1000, 30_000_000);
    let mutexee = stress(LockKind::Mutexee, 4, 1000, 30_000_000);
    assert!(
        mutexee.total_ops as f64 > 1.2 * mutex.total_ops as f64,
        "MUTEXEE {} vs MUTEX {}",
        mutexee.total_ops,
        mutex.total_ops
    );
}

#[test]
fn uncontested_spinlocks_beat_sleeping_locks() {
    // Table 2: simple spinlocks have the cheapest acquire/release path.
    let tas = stress(LockKind::Tas, 1, 100, 8_000_000);
    let mutex = stress(LockKind::Mutex, 1, 100, 8_000_000);
    let mcs = stress(LockKind::Mcs, 1, 100, 8_000_000);
    assert!(tas.total_ops > mutex.total_ops, "TAS {} MUTEX {}", tas.total_ops, mutex.total_ops);
    assert!(tas.total_ops > mcs.total_ops, "TAS {} MCS {}", tas.total_ops, mcs.total_ops);
}

#[test]
fn mutexee_adapts_to_mutex_mode_when_futex_dominates() {
    // Force futex handovers by making critical sections long and the spin
    // budget tiny: the adaptation must flip the lock into mutex mode.
    let params = LockParams {
        mutexee: MutexeeParams { spin_budget: 200, adapt_period: 32, ..MutexeeParams::default() },
        ..LockParams::default()
    };
    let mut b = SimBuilder::new(MachineConfig::tiny());
    let lock = SimLock::alloc(&mut b, LockKind::Mutexee, 4, params);
    for _ in 0..4 {
        // Think time well above the unlock watch window, so releases cannot
        // be self-absorbed by the releasing thread re-acquiring.
        b.spawn(
            Box::new(LockStress::new(
                vec![lock.clone()],
                LockStressConfig { cs: Dist::Fixed(30_000), non_cs: Dist::Fixed(30_000) },
            )),
            PinPolicy::PaperOrder,
        );
    }
    assert_eq!(lock.mutexee_mode(), MutexeeMode::Spin, "starts in spin mode");
    let _ = b.run(RunSpec { duration: 40_000_000, warmup: 0 });
    assert_eq!(
        lock.mutexee_mode(),
        MutexeeMode::Mutex,
        "long CS + tiny spin budget must flip MUTEXEE to mutex mode"
    );
}

#[test]
fn mutexee_timeout_trades_efficiency_for_bounded_starvation() {
    // Figure 10 / §5.1: under extreme single-lock contention, MUTEXEE
    // without timeouts starves sleepers (possibly forever) in exchange for
    // top throughput and TPP; the sleep timeout bounds every thread's wait
    // at an efficiency cost.
    let run = |timeout: Option<u64>| {
        let mut b = SimBuilder::new(MachineConfig::xeon());
        let lock = SimLock::alloc(
            &mut b,
            LockKind::Mutexee,
            12,
            LockParams {
                mutexee: MutexeeParams { sleep_timeout: timeout, ..MutexeeParams::default() },
                ..LockParams::default()
            },
        );
        for _ in 0..12 {
            b.spawn(
                Box::new(LockStress::new(
                    vec![lock.clone()],
                    // Jittered think time: a fixed value would let the
                    // releaser deterministically win every CAS race.
                    LockStressConfig { cs: Dist::Fixed(2_000), non_cs: Dist::Uniform(0, 1_000) },
                )),
                PinPolicy::PaperOrder,
            );
        }
        b.run(RunSpec { duration: 50_000_000, warmup: 5_000_000 })
    };
    let no_timeout = run(None);
    let with_timeout = run(Some(4_000_000));
    let progressed = |r: &poly_sim::SimReport| r.threads.iter().filter(|t| t.ops > 0).count();
    // Unbounded MUTEXEE starves most threads completely.
    let p_nt = progressed(&no_timeout);
    assert!(p_nt <= 6, "expected heavy starvation without timeouts, {p_nt}/12 progressed");
    // The timeout pulls (nearly) everyone through. A couple of
    // remote-socket threads may still lose every CAS race within the run —
    // coherence-latency (NUMA) unfairness the model makes visible.
    assert!(with_timeout.futex.timeouts > 0, "timeouts must fire");
    let p_t = progressed(&with_timeout);
    assert!(p_t >= p_nt + 4, "timeouts must bound starvation: {p_t}/12 vs {p_nt}/12 without");
    // And fairness costs energy efficiency (the paper's 10.9 vs 6.5
    // Kacq/Joule at 20 threads).
    assert!(
        with_timeout.tpp < no_timeout.tpp,
        "bounded tails must cost TPP: {} vs {}",
        with_timeout.tpp,
        no_timeout.tpp
    );
}

#[test]
fn ss_modes_communicate() {
    for (mode, min_ops) in [
        (SsMode::SpinOnly, 2_000u64),
        (SsMode::SleepOnly, 100),
        (SsMode::SpinSleep(10), 1_000),
        (SsMode::SpinSleep(100), 2_000),
    ] {
        let mut b = SimBuilder::new(MachineConfig::tiny());
        let sh = SsShared::alloc(&mut b, mode, 4);
        for tid in 0..4 {
            b.spawn(Box::new(sh.program(tid)), PinPolicy::PaperOrder);
        }
        let r = b.run(RunSpec { duration: 30_000_000, warmup: 3_000_000 });
        assert!(
            r.total_ops > min_ops,
            "{}: communication stalled, {} ops",
            mode.label(),
            r.total_ops
        );
    }
}

#[test]
fn ss_larger_t_means_fewer_futex_calls() {
    let run = |t: u64| {
        let mut b = SimBuilder::new(MachineConfig::tiny());
        let sh = SsShared::alloc(&mut b, SsMode::SpinSleep(t), 4);
        for tid in 0..4 {
            b.spawn(Box::new(sh.program(tid)), PinPolicy::PaperOrder);
        }
        let r = b.run(RunSpec { duration: 30_000_000, warmup: 3_000_000 });
        r.futex.wake_calls as f64 / r.total_ops.max(1) as f64
    };
    let t10 = run(10);
    let t1000 = run(1000);
    assert!(
        t1000 < t10 / 5.0,
        "futex calls per handover must fall with T: T=10 {t10:.4}, T=1000 {t1000:.4}"
    );
}

#[test]
fn runs_are_deterministic_per_kind() {
    for kind in [LockKind::Mutexee, LockKind::Mcs] {
        let a = stress(kind, 4, 900, 10_000_000);
        let b = stress(kind, 4, 900, 10_000_000);
        assert_eq!(a.total_ops, b.total_ops, "{}", kind.label());
        assert_eq!(a.futex, b.futex, "{}", kind.label());
    }
}
