//! Lock algorithms of "Unlocking Energy" as simulator state machines.
//!
//! Implements every lock the paper evaluates (§2, §5):
//!
//! | Lock      | Waiting style                                        |
//! |-----------|------------------------------------------------------|
//! | `TAS`     | global spinning: hammer an atomic exchange           |
//! | `TTAS`    | local spinning, then compare-and-swap                |
//! | `TICKET`  | FIFO; local spinning on the owner field              |
//! | `MCS`     | FIFO queue lock; local spinning on a private node    |
//! | `CLH`     | FIFO queue lock; local spinning on the predecessor   |
//! | `MUTEX`   | glibc-style futex mutex (Drepper's algorithm)        |
//! | `MUTEXEE` | the paper's contribution: long `mfence`-paused spin, |
//! |           | user-space handover in unlock, spin/mutex mode       |
//! |           | adaptation, optional sleep timeouts (§5.1, Table 1)  |
//!
//! Plus the waiting-style microbenchmarks of §4 (sleeping vs global vs local
//! spinning with every pausing flavor, DVFS, `monitor/mwait`), the
//! spin-then-sleep `ss-T` communication benchmark of Figure 7, and a
//! reader-writer lock and condition variable built on these primitives for
//! the system models of §6.
//!
//! Algorithms are expressed as explicit state machines ([`AcqSm`]/[`RelSm`])
//! driven by the discrete-event engine through [`poly_sim::Program`]s such
//! as [`LockStress`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod algos;
mod condvar;
mod driver;
mod lock;
mod rwlock;
mod sm;
mod ss;
mod waiting;

pub use condvar::{CondSm, SimCondvar};
pub use driver::{Dist, LockStress, LockStressConfig};
pub use lock::{LockKind, LockParams, MutexParams, MutexeeMode, MutexeeParams, SimLock};
pub use rwlock::{RwAcqSm, RwMode, RwRelSm, SimRwLock};
pub use sm::{AcqSm, Handover, RelSm, Step};
pub use ss::{SsMode, SsProgram, SsShared};
pub use waiting::{WaitStyle, Waiter};
