//! MCS: FIFO queue lock with local spinning on a per-thread node.
//!
//! The tail word stores `thread id + 1` (0 = empty). Each thread owns two
//! node lines: `locked` (spun on by the thread while waiting) and `next`
//! (written by the successor). Waiters spin on *their own* line, so a
//! release invalidates exactly one waiter — the property that makes MCS the
//! best spinlock under heavy contention in the paper's Figure 11.

use poly_sim::{Op, OpResult, RmwKind, SpinCond, ThreadRt, Tid};

use crate::lock::LockInner;
use crate::sm::{Handover, Step};

enum AcqSt {
    InitLocked,
    InitNext,
    SwapTail,
    LinkPred,
    SpinNode,
}

/// MCS acquisition.
pub(crate) struct Acq {
    st: AcqSt,
}

impl Acq {
    pub(crate) fn new() -> Self {
        Self { st: AcqSt::InitLocked }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        let node = l.mcs_nodes[tid];
        match (&self.st, last) {
            (_, OpResult::Started) => {
                self.st = AcqSt::InitLocked;
                Step::Do(Op::Rmw(node.locked, RmwKind::Store(1)))
            }
            (AcqSt::InitLocked, OpResult::Done) => {
                self.st = AcqSt::InitNext;
                Step::Do(Op::Rmw(node.next, RmwKind::Store(0)))
            }
            (AcqSt::InitNext, OpResult::Done) => {
                self.st = AcqSt::SwapTail;
                Step::Do(Op::Rmw(l.word, RmwKind::Swap(tid as u64 + 1)))
            }
            (AcqSt::SwapTail, OpResult::Value(0)) => Step::Acquired(Handover::Uncontended),
            (AcqSt::SwapTail, OpResult::Value(pred)) => {
                let pred = (pred - 1) as usize;
                self.st = AcqSt::LinkPred;
                Step::Do(Op::Rmw(l.mcs_nodes[pred].next, RmwKind::Store(tid as u64 + 1)))
            }
            (AcqSt::LinkPred, OpResult::Done) => {
                self.st = AcqSt::SpinNode;
                Step::Do(Op::SpinLoad {
                    line: node.locked,
                    pause: l.params.spin_pause,
                    until: SpinCond::Equals(0),
                    max: None,
                })
            }
            (AcqSt::SpinNode, OpResult::Value(_)) => Step::Acquired(Handover::Spin),
            (_, other) => panic!("MCS acquire: unexpected result {other:?}"),
        }
    }
}

enum RelSt {
    LoadNext,
    CasTail,
    SpinNext,
    Handoff,
}

/// MCS release: hand off to the successor, or clear the tail.
pub(crate) struct Rel {
    st: RelSt,
}

impl Rel {
    pub(crate) fn new() -> Self {
        Self { st: RelSt::LoadNext }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        let node = l.mcs_nodes[tid];
        match (&self.st, last) {
            (_, OpResult::Started) => {
                self.st = RelSt::LoadNext;
                Step::Do(Op::Load(node.next))
            }
            (RelSt::LoadNext, OpResult::Value(0)) => {
                self.st = RelSt::CasTail;
                Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: tid as u64 + 1, new: 0 }))
            }
            (RelSt::LoadNext, OpResult::Value(next)) => {
                self.st = RelSt::Handoff;
                Step::Do(Op::Rmw(l.mcs_nodes[(next - 1) as usize].locked, RmwKind::Store(0)))
            }
            (RelSt::CasTail, OpResult::Cas { ok: true, .. }) => Step::Released,
            (RelSt::CasTail, OpResult::Cas { ok: false, .. }) => {
                // A successor is between the tail swap and the next-link
                // store: wait for the link to appear.
                self.st = RelSt::SpinNext;
                Step::Do(Op::SpinLoad {
                    line: node.next,
                    pause: l.params.spin_pause,
                    until: SpinCond::Differs(0),
                    max: None,
                })
            }
            (RelSt::SpinNext, OpResult::Value(next)) => {
                self.st = RelSt::Handoff;
                Step::Do(Op::Rmw(l.mcs_nodes[(next - 1) as usize].locked, RmwKind::Store(0)))
            }
            (RelSt::Handoff, OpResult::Done) => Step::Released,
            (_, other) => panic!("MCS release: unexpected result {other:?}"),
        }
    }
}
