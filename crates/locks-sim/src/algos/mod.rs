//! Per-algorithm acquire/release state machines.

pub(crate) mod clh;
pub(crate) mod mcs;
pub(crate) mod mutex;
pub(crate) mod mutexee;
pub(crate) mod tas;
pub(crate) mod ticket;
pub(crate) mod ttas;

/// Elapsed-cycles threshold under which an acquisition is classified as
/// uncontended (used by algorithms that cannot tell structurally).
pub(crate) const UNCONTENDED_CYCLES: u64 = 300;
