//! TAS: test-and-set with global spinning.
//!
//! The acquire path hammers an atomic exchange on the lock word — the
//! paper's "global spinning": every attempt is a serialized coherence
//! transaction, which is why TAS collapses first under contention (its
//! release has to queue behind the waiters' exchanges).

use poly_sim::{Op, OpResult, RmwKind, ThreadRt, Tid};

use crate::lock::LockInner;
use crate::sm::{Handover, Step};

/// TAS acquisition: `while (swap(word, 1) != 0) {}`.
pub(crate) struct Acq {
    attempts: u64,
}

impl Acq {
    pub(crate) fn new() -> Self {
        Self { attempts: 0 }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match last {
            OpResult::Started => {
                self.attempts = 1;
                Step::Do(Op::Rmw(l.word, RmwKind::Swap(1)))
            }
            OpResult::Value(0) => Step::Acquired(if self.attempts == 1 {
                Handover::Uncontended
            } else {
                Handover::Spin
            }),
            OpResult::Value(_) => {
                self.attempts += 1;
                Step::Do(Op::Rmw(l.word, RmwKind::Swap(1)))
            }
            other => panic!("TAS acquire: unexpected result {other:?}"),
        }
    }
}

/// TAS release: `word = 0`.
pub(crate) struct Rel {
    issued: bool,
}

impl Rel {
    pub(crate) fn new() -> Self {
        Self { issued: false }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match last {
            OpResult::Started => {
                self.issued = true;
                Step::Do(Op::Rmw(l.word, RmwKind::Store(0)))
            }
            OpResult::Done if self.issued => Step::Released,
            other => panic!("TAS release: unexpected result {other:?}"),
        }
    }
}
