//! MUTEX: the glibc-style futex mutex (Drepper's "Futexes Are Tricky",
//! algorithm 2).
//!
//! Lock word: 0 = free, 1 = held, 2 = held with (possible) waiters. The
//! default configuration attempts one CAS before sleeping — the behavior
//! the paper blames for MUTEX's poor throughput on short critical sections
//! ("threads are put to sleep, although the queuing time behind the lock is
//! less than the futex-sleep latency", §5.1). The optional
//! `PTHREAD_MUTEX_ADAPTIVE_NP`-style bounded spin is available through
//! [`MutexParams::adaptive_spin`](crate::MutexParams).

use poly_sim::{Cycles, Op, OpResult, RmwKind, SpinCond, ThreadRt, Tid};

use crate::lock::LockInner;
use crate::sm::{Handover, Step};

enum St {
    TryLock,
    AdaptiveSpin { deadline: Cycles },
    AdaptiveCas { deadline: Cycles },
    MarkContended,
    Sleep,
    Retry,
}

/// MUTEX acquisition.
pub(crate) struct Acq {
    st: St,
    slept: bool,
}

impl Acq {
    pub(crate) fn new() -> Self {
        Self { st: St::TryLock, slept: false }
    }

    /// Continues Drepper's contended loop with the last observed value `c`.
    fn step_contended(&mut self, l: &LockInner, c: u64) -> Step {
        if c == 2 {
            self.st = St::Sleep;
            Step::Do(Op::FutexWait { line: l.word, expect: 2, timeout: None })
        } else {
            self.st = St::MarkContended;
            Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 1, new: 2 }))
        }
    }

    fn handover(&self) -> Handover {
        if self.slept {
            Handover::Futex
        } else {
            Handover::Spin
        }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match (&self.st, last) {
            (_, OpResult::Started) => {
                self.st = St::TryLock;
                Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 1 }))
            }
            (St::TryLock, OpResult::Cas { ok: true, .. }) => Step::Acquired(Handover::Uncontended),
            (St::TryLock, OpResult::Cas { ok: false, old }) => {
                if let Some(budget) = l.params.mutex.adaptive_spin {
                    let deadline = rt.now + budget;
                    self.st = St::AdaptiveSpin { deadline };
                    Step::Do(Op::SpinLoad {
                        line: l.word,
                        pause: l.params.mutex.pause,
                        until: SpinCond::Equals(0),
                        max: Some(budget),
                    })
                } else {
                    self.step_contended(l, old)
                }
            }
            (St::AdaptiveSpin { deadline }, OpResult::Value(0)) => {
                let deadline = *deadline;
                self.st = St::AdaptiveCas { deadline };
                Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 1 }))
            }
            (St::AdaptiveSpin { .. }, OpResult::SpinTimeout(v)) => {
                self.step_contended(l, if v == 0 { 1 } else { v })
            }
            (St::AdaptiveCas { .. }, OpResult::Cas { ok: true, .. }) => {
                Step::Acquired(Handover::Spin)
            }
            (St::AdaptiveCas { deadline }, OpResult::Cas { ok: false, old }) => {
                let deadline = *deadline;
                if rt.now < deadline {
                    self.st = St::AdaptiveSpin { deadline };
                    Step::Do(Op::SpinLoad {
                        line: l.word,
                        pause: l.params.mutex.pause,
                        until: SpinCond::Equals(0),
                        max: Some(deadline - rt.now),
                    })
                } else {
                    self.step_contended(l, old)
                }
            }
            (St::MarkContended, OpResult::Cas { ok, old }) => {
                // cmpxchg(1 -> 2): if the lock was free (old == 0), skip the
                // sleep and retry immediately; otherwise the word is (now) 2
                // and it is safe to sleep.
                let _ = ok;
                if old == 0 {
                    self.st = St::Retry;
                    Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 2 }))
                } else {
                    self.st = St::Sleep;
                    Step::Do(Op::FutexWait { line: l.word, expect: 2, timeout: None })
                }
            }
            (St::Sleep, OpResult::FutexWait(r)) => {
                if r == poly_sim::FutexWaitResult::Woken {
                    self.slept = true;
                }
                self.st = St::Retry;
                Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 2 }))
            }
            (St::Retry, OpResult::Cas { ok: true, .. }) => Step::Acquired(self.handover()),
            (St::Retry, OpResult::Cas { ok: false, old }) => self.step_contended(l, old),
            (_, other) => panic!("MUTEX acquire: unexpected result {other:?}"),
        }
    }
}

enum RelSt {
    Release,
    Wake,
}

/// MUTEX release: set free in user space, then wake one sleeper if the word
/// was marked contended.
pub(crate) struct Rel {
    st: RelSt,
    issued: bool,
}

impl Rel {
    pub(crate) fn new() -> Self {
        Self { st: RelSt::Release, issued: false }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match (&self.st, last) {
            (_, OpResult::Started) => {
                self.issued = true;
                self.st = RelSt::Release;
                Step::Do(Op::Rmw(l.word, RmwKind::Swap(0)))
            }
            (RelSt::Release, OpResult::Value(old)) => {
                debug_assert!(old != 0, "MUTEX released while free");
                if old == 2 {
                    self.st = RelSt::Wake;
                    Step::Do(Op::FutexWake { line: l.word, n: 1 })
                } else {
                    Step::Released
                }
            }
            (RelSt::Wake, OpResult::FutexWake { .. }) => Step::Released,
            (_, other) => panic!("MUTEX release: unexpected result {other:?}"),
        }
    }
}
