//! TICKET: FIFO lock with local spinning on the owner field.
//!
//! The lock word packs `next` in the high 32 bits and `owner` in the low 32
//! bits, as in common single-word ticket-lock implementations.

use poly_sim::{Op, OpResult, RmwKind, SpinCond, ThreadRt, Tid};

use crate::lock::LockInner;
use crate::sm::{Handover, Step};

const OWNER_MASK: u64 = 0xFFFF_FFFF;
const NEXT_ONE: u64 = 1 << 32;

enum St {
    Take,
    Spin,
}

/// Ticket acquisition: fetch-and-add the `next` field, then wait until
/// `owner` reaches the drawn ticket.
pub(crate) struct Acq {
    st: St,
    ticket: u64,
}

impl Acq {
    pub(crate) fn new() -> Self {
        Self { st: St::Take, ticket: 0 }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match (&self.st, last) {
            (_, OpResult::Started) => {
                self.st = St::Take;
                Step::Do(Op::Rmw(l.word, RmwKind::FetchAdd(NEXT_ONE)))
            }
            (St::Take, OpResult::Value(old)) => {
                self.ticket = old >> 32;
                if old & OWNER_MASK == self.ticket {
                    return Step::Acquired(Handover::Uncontended);
                }
                self.st = St::Spin;
                Step::Do(Op::SpinLoad {
                    line: l.word,
                    pause: l.params.spin_pause,
                    until: SpinCond::MaskEquals { mask: OWNER_MASK, want: self.ticket },
                    max: None,
                })
            }
            (St::Spin, OpResult::Value(_)) => Step::Acquired(Handover::Spin),
            (_, other) => panic!("TICKET acquire: unexpected result {other:?}"),
        }
    }
}

/// Ticket release: increment the `owner` field.
pub(crate) struct Rel {
    issued: bool,
}

impl Rel {
    pub(crate) fn new() -> Self {
        Self { issued: false }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match last {
            OpResult::Started => {
                self.issued = true;
                Step::Do(Op::Rmw(l.word, RmwKind::FetchAdd(1)))
            }
            OpResult::Value(_) if self.issued => Step::Released,
            other => panic!("TICKET release: unexpected result {other:?}"),
        }
    }
}
