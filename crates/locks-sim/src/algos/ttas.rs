//! TTAS: test-and-test-and-set with local spinning.

use poly_sim::{Op, OpResult, RmwKind, SpinCond, ThreadRt, Tid};

use crate::lock::LockInner;
use crate::sm::{Handover, Step};

enum St {
    Spin,
    Cas,
}

/// TTAS acquisition: spin locally until the word reads 0, then CAS.
pub(crate) struct Acq {
    st: St,
    attempts: u64,
}

impl Acq {
    pub(crate) fn new() -> Self {
        Self { st: St::Spin, attempts: 0 }
    }

    fn spin_op(l: &LockInner) -> Op {
        Op::SpinLoad {
            line: l.word,
            pause: l.params.spin_pause,
            until: SpinCond::Equals(0),
            max: None,
        }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match (&self.st, last) {
            (_, OpResult::Started) => {
                self.st = St::Spin;
                Step::Do(Self::spin_op(l))
            }
            (St::Spin, OpResult::Value(0)) => {
                self.st = St::Cas;
                self.attempts += 1;
                Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 1 }))
            }
            (St::Cas, OpResult::Cas { ok: true, .. }) => Step::Acquired(if self.attempts == 1 {
                Handover::Uncontended
            } else {
                Handover::Spin
            }),
            (St::Cas, OpResult::Cas { ok: false, .. }) => {
                self.st = St::Spin;
                Step::Do(Self::spin_op(l))
            }
            (_, other) => panic!("TTAS acquire: unexpected result {other:?}"),
        }
    }
}

/// TTAS release: `word = 0`.
pub(crate) struct Rel {
    issued: bool,
}

impl Rel {
    pub(crate) fn new() -> Self {
        Self { issued: false }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match last {
            OpResult::Started => {
                self.issued = true;
                Step::Do(Op::Rmw(l.word, RmwKind::Store(0)))
            }
            OpResult::Done if self.issued => Step::Released,
            other => panic!("TTAS release: unexpected result {other:?}"),
        }
    }
}
