//! MUTEXEE: the paper's optimized futex mutex (§5.1, Table 1).
//!
//! Differences from MUTEX, as designed by the paper:
//!
//! * `lock()` spins with `mfence` pausing for ~8000 cycles (spin mode) or
//!   ~256 cycles (mutex mode) before sleeping with futex;
//! * `unlock()` releases the word in user space, then *waits in user space*
//!   for a period proportional to the maximum coherence latency (~384 /
//!   ~128 cycles); if another thread grabbed the lock meanwhile, the futex
//!   wake-up is skipped entirely — most handovers stay futex-free;
//! * the lock tracks how many handovers went through futex and periodically
//!   flips between spin and mutex modes (>30% futex handovers → mutex mode);
//! * an optional futex-sleep timeout bounds tail latency: a thread woken by
//!   timeout spins until it acquires the lock, without sleeping again
//!   (Figure 10).
//!
//! Lock word: 0 = free, 1 = held. A separate cache line counts sleepers so
//! `unlock` knows whether a wake-up call could be needed at all.

use poly_sim::{Cycles, FutexWaitResult, Op, OpResult, RmwKind, SpinCond, ThreadRt, Tid};

use crate::algos::UNCONTENDED_CYCLES;
use crate::lock::{LockInner, MutexeeMode};
use crate::sm::{Handover, Step};

enum St {
    Spin { deadline: Cycles },
    SpinCas { deadline: Cycles },
    IncWaiters,
    SleepCas,
    Sleep,
    NoSleepSpin,
    NoSleepCas,
    DecWaiters { h: Handover },
}

/// MUTEXEE acquisition.
pub(crate) struct Acq {
    st: St,
    started_at: Cycles,
    slept: bool,
}

impl Acq {
    pub(crate) fn new() -> Self {
        Self { st: St::Spin { deadline: 0 }, started_at: 0, slept: false }
    }

    fn spin_op(l: &LockInner, max: Cycles) -> Op {
        Op::SpinLoad {
            line: l.word,
            pause: l.params.mutexee.pause,
            until: SpinCond::Equals(0),
            max: Some(max.max(1)),
        }
    }

    fn waiters(l: &LockInner) -> poly_sim::LineId {
        l.waiters.expect("MUTEXEE allocates a waiter-count line")
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        let p = &l.params.mutexee;
        match (&self.st, last) {
            (_, OpResult::Started) => {
                self.started_at = rt.now;
                let budget = match l.mutexee.borrow().mode {
                    MutexeeMode::Spin => p.spin_budget,
                    MutexeeMode::Mutex => p.spin_budget_mutex_mode,
                };
                let deadline = rt.now + budget;
                self.st = St::Spin { deadline };
                Step::Do(Self::spin_op(l, budget))
            }
            (St::Spin { deadline }, OpResult::Value(0)) => {
                let deadline = *deadline;
                self.st = St::SpinCas { deadline };
                Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 1 }))
            }
            (St::Spin { .. }, OpResult::SpinTimeout(_)) => {
                self.st = St::IncWaiters;
                Step::Do(Op::Rmw(Self::waiters(l), RmwKind::FetchAdd(1)))
            }
            (St::SpinCas { deadline }, OpResult::Cas { ok: true, .. }) => {
                let _ = deadline;
                Step::Acquired(if rt.now - self.started_at < UNCONTENDED_CYCLES {
                    Handover::Uncontended
                } else {
                    Handover::Spin
                })
            }
            (St::SpinCas { deadline }, OpResult::Cas { ok: false, .. }) => {
                let deadline = *deadline;
                if rt.now < deadline {
                    self.st = St::Spin { deadline };
                    Step::Do(Self::spin_op(l, deadline - rt.now))
                } else {
                    self.st = St::IncWaiters;
                    Step::Do(Op::Rmw(Self::waiters(l), RmwKind::FetchAdd(1)))
                }
            }
            (St::IncWaiters, OpResult::Value(_)) => {
                self.st = St::SleepCas;
                Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 1 }))
            }
            (St::SleepCas, OpResult::Cas { ok: true, .. }) => {
                let h = if self.slept { Handover::Futex } else { Handover::Spin };
                self.st = St::DecWaiters { h };
                Step::Do(Op::Rmw(Self::waiters(l), RmwKind::FetchAdd(u64::MAX)))
            }
            (St::SleepCas, OpResult::Cas { ok: false, .. }) => {
                self.st = St::Sleep;
                Step::Do(Op::FutexWait { line: l.word, expect: 1, timeout: p.sleep_timeout })
            }
            (St::Sleep, OpResult::FutexWait(r)) => match r {
                FutexWaitResult::Woken => {
                    self.slept = true;
                    self.st = St::SleepCas;
                    Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 1 }))
                }
                FutexWaitResult::ValueMismatch => {
                    self.st = St::SleepCas;
                    Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 1 }))
                }
                FutexWaitResult::TimedOut => {
                    // Woken by timeout: spin until acquired, never sleep
                    // again (the tail-latency bound of Figure 10).
                    self.slept = true;
                    self.st = St::NoSleepSpin;
                    Step::Do(Op::SpinLoad {
                        line: l.word,
                        pause: p.pause,
                        until: SpinCond::Equals(0),
                        max: None,
                    })
                }
            },
            (St::NoSleepSpin, OpResult::Value(0)) => {
                self.st = St::NoSleepCas;
                Step::Do(Op::Rmw(l.word, RmwKind::Cas { expect: 0, new: 1 }))
            }
            (St::NoSleepCas, OpResult::Cas { ok: true, .. }) => {
                self.st = St::DecWaiters { h: Handover::Futex };
                Step::Do(Op::Rmw(Self::waiters(l), RmwKind::FetchAdd(u64::MAX)))
            }
            (St::NoSleepCas, OpResult::Cas { ok: false, .. }) => {
                self.st = St::NoSleepSpin;
                Step::Do(Op::SpinLoad {
                    line: l.word,
                    pause: p.pause,
                    until: SpinCond::Equals(0),
                    max: None,
                })
            }
            (St::DecWaiters { h }, OpResult::Value(_)) => Step::Acquired(*h),
            (_, other) => panic!("MUTEXEE acquire: unexpected result {other:?}"),
        }
    }
}

/// Records an acquisition in the lock's adaptation statistics and
/// periodically re-evaluates the spin/mutex mode (§5.1).
pub(crate) fn note_acquisition(l: &LockInner, h: Handover) {
    let p = &l.params.mutexee;
    let mut s = l.mutexee.borrow_mut();
    s.acquisitions += 1;
    if h == Handover::Futex {
        s.futex_handovers += 1;
    }
    if s.acquisitions >= p.adapt_period {
        let ratio = f64::from(s.futex_handovers) / f64::from(s.acquisitions);
        s.mode =
            if ratio > p.futex_ratio_threshold { MutexeeMode::Mutex } else { MutexeeMode::Spin };
        s.acquisitions = 0;
        s.futex_handovers = 0;
    }
}

enum RelSt {
    Release,
    LoadWaiters,
    Wait,
    Wake,
}

/// MUTEXEE release: free the word; if sleepers exist, watch the word
/// briefly in user space and skip the futex wake-up whenever another thread
/// takes the lock over meanwhile.
///
/// The waiter check comes first, so the uncontended release is as cheap as
/// a spinlock's; the user-space wait only runs when a wake-up could
/// actually be needed.
pub(crate) struct Rel {
    st: RelSt,
}

impl Rel {
    pub(crate) fn new() -> Self {
        Self { st: RelSt::Release }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        _tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        let p = &l.params.mutexee;
        match (&self.st, last) {
            (_, OpResult::Started) => {
                self.st = RelSt::Release;
                Step::Do(Op::Rmw(l.word, RmwKind::Store(0)))
            }
            (RelSt::Release, OpResult::Done) => {
                self.st = RelSt::LoadWaiters;
                Step::Do(Op::Load(l.waiters.expect("MUTEXEE waiter line")))
            }
            (RelSt::LoadWaiters, OpResult::Value(0)) => Step::Released,
            (RelSt::LoadWaiters, OpResult::Value(_)) => {
                let wait = match l.mutexee.borrow().mode {
                    MutexeeMode::Spin => p.unlock_wait,
                    MutexeeMode::Mutex => p.unlock_wait_mutex_mode,
                };
                self.st = RelSt::Wait;
                Step::Do(Op::SpinLoad {
                    line: l.word,
                    pause: p.pause,
                    until: SpinCond::Differs(0),
                    max: Some(wait),
                })
            }
            // Someone acquired the lock in user space: handover done, no
            // futex call needed.
            (RelSt::Wait, OpResult::Value(_)) => Step::Released,
            (RelSt::Wait, OpResult::SpinTimeout(_)) => {
                self.st = RelSt::Wake;
                Step::Do(Op::FutexWake { line: l.word, n: 1 })
            }
            (RelSt::Wake, OpResult::FutexWake { .. }) => Step::Released,
            (_, other) => panic!("MUTEXEE release: unexpected result {other:?}"),
        }
    }
}
