//! CLH: FIFO queue lock with local spinning on the predecessor's node.
//!
//! The tail word stores `line id + 1` of the last enqueued node and starts
//! pointing at a released dummy node, so a locking thread always has a
//! predecessor node to consume. After releasing, a thread recycles its
//! predecessor's node for the next acquisition (Craig; Landin & Hagersten).

use poly_sim::{LineId, Op, OpResult, RmwKind, SpinCond, ThreadRt, Tid};

use crate::algos::UNCONTENDED_CYCLES;
use crate::lock::LockInner;
use crate::sm::{Handover, Step};

enum AcqSt {
    StoreMine,
    SwapTail,
    SpinPred,
}

/// CLH acquisition.
pub(crate) struct Acq {
    st: AcqSt,
    started_at: u64,
    pred: Option<LineId>,
}

impl Acq {
    pub(crate) fn new() -> Self {
        Self { st: AcqSt::StoreMine, started_at: 0, pred: None }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        tid: Tid,
        rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match (&self.st, last) {
            (_, OpResult::Started) => {
                self.started_at = rt.now;
                self.st = AcqSt::StoreMine;
                let my = l.clh_node.borrow()[tid];
                Step::Do(Op::Rmw(my, RmwKind::Store(1)))
            }
            (AcqSt::StoreMine, OpResult::Done) => {
                self.st = AcqSt::SwapTail;
                let my = l.clh_node.borrow()[tid];
                Step::Do(Op::Rmw(l.word, RmwKind::Swap(my.addr() + 1)))
            }
            (AcqSt::SwapTail, OpResult::Value(pred_raw)) => {
                debug_assert!(pred_raw != 0, "CLH tail can never be empty");
                let pred = LineId::from_raw((pred_raw - 1) as u32);
                self.pred = Some(pred);
                self.st = AcqSt::SpinPred;
                Step::Do(Op::SpinLoad {
                    line: pred,
                    pause: l.params.spin_pause,
                    until: SpinCond::Equals(0),
                    max: None,
                })
            }
            (AcqSt::SpinPred, OpResult::Value(_)) => {
                l.clh_pred.borrow_mut()[tid] = self.pred;
                Step::Acquired(if rt.now - self.started_at < UNCONTENDED_CYCLES {
                    Handover::Uncontended
                } else {
                    Handover::Spin
                })
            }
            (_, other) => panic!("CLH acquire: unexpected result {other:?}"),
        }
    }
}

/// CLH release: mark the own node released, then recycle the predecessor's
/// node.
pub(crate) struct Rel {
    issued: bool,
}

impl Rel {
    pub(crate) fn new() -> Self {
        Self { issued: false }
    }

    pub(crate) fn on(
        &mut self,
        l: &LockInner,
        tid: Tid,
        _rt: &mut ThreadRt<'_>,
        last: OpResult,
    ) -> Step {
        match last {
            OpResult::Started => {
                self.issued = true;
                let my = l.clh_node.borrow()[tid];
                Step::Do(Op::Rmw(my, RmwKind::Store(0)))
            }
            OpResult::Done if self.issued => {
                let pred = l.clh_pred.borrow_mut()[tid]
                    .take()
                    .expect("CLH release without a recorded acquire");
                l.clh_node.borrow_mut()[tid] = pred;
                Step::Released
            }
            other => panic!("CLH release: unexpected result {other:?}"),
        }
    }
}
