//! A reader-writer lock built on a pluggable mutual-exclusion algorithm.
//!
//! Kyoto Cabinet (and parts of MySQL) synchronize through
//! `pthread_rwlock`; the paper swaps the underlying algorithm there too.
//! This model mirrors a classic mutex-plus-reader-count construction: the
//! mutex (any [`LockKind`]) serializes writers and reader registration, a
//! separate line counts active readers, and a writer drains readers while
//! holding the mutex. The algorithm choice therefore shifts rwlock behavior
//! exactly the way Figure 13's Kyoto columns show.

use poly_sim::{LineId, Op, OpResult, RmwKind, SimBuilder, SpinCond, ThreadRt, Tid};

use crate::lock::{LockKind, LockParams, SimLock};
use crate::sm::{AcqSm, Handover, RelSm, Step};

/// Read or write acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RwMode {
    /// Shared (reader) access.
    Read,
    /// Exclusive (writer) access.
    Write,
}

/// The reader-writer lock instance.
#[derive(Clone)]
pub struct SimRwLock {
    lock: SimLock,
    readers: LineId,
}

impl SimRwLock {
    /// Allocates a reader-writer lock whose internal mutex uses `kind`.
    pub fn alloc(b: &mut SimBuilder, kind: LockKind, threads: usize, params: LockParams) -> Self {
        let lock = SimLock::alloc(b, kind, threads, params);
        let readers = b.alloc_line(0);
        Self { lock, readers }
    }

    /// The underlying mutex algorithm.
    pub fn kind(&self) -> LockKind {
        self.lock.kind()
    }

    /// Mutual-exclusion tracker key (valid for writer sections).
    pub fn key(&self) -> u64 {
        self.lock.key()
    }

    /// Starts a read or write acquisition.
    pub fn begin_acquire(&self, tid: Tid, mode: RwMode) -> RwAcqSm {
        RwAcqSm {
            mode,
            readers: self.readers,
            pause: self.lock.inner.params.spin_pause,
            st: RwAcqSt::Lock(self.lock.begin_acquire(tid)),
            unlock: Some(self.lock.begin_release(tid)),
            handover: Handover::Uncontended,
        }
    }

    /// Starts the matching release.
    pub fn begin_release(&self, tid: Tid, mode: RwMode) -> RwRelSm {
        RwRelSm {
            mode,
            readers: self.readers,
            st: match mode {
                RwMode::Read => RwRelSt::DecReaders,
                RwMode::Write => RwRelSt::Unlock(self.lock.begin_release(tid)),
            },
        }
    }
}

enum RwAcqSt {
    Lock(AcqSm),
    BumpReaders,
    ReleaseAfterBump(RelSm),
    DrainReaders,
}

/// Reader/writer acquisition state machine.
pub struct RwAcqSm {
    mode: RwMode,
    readers: LineId,
    pause: poly_sim::PauseKind,
    st: RwAcqSt,
    unlock: Option<RelSm>,
    handover: Handover,
}

impl RwAcqSm {
    /// Advances the acquisition (same protocol as [`AcqSm::on`]).
    pub fn on(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Step {
        let mut last = last;
        loop {
            match &mut self.st {
                RwAcqSt::Lock(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return Step::Do(op),
                    Step::Acquired(h) => {
                        self.handover = h;
                        match self.mode {
                            RwMode::Read => {
                                self.st = RwAcqSt::BumpReaders;
                                return Step::Do(Op::Rmw(self.readers, RmwKind::FetchAdd(1)));
                            }
                            RwMode::Write => {
                                self.st = RwAcqSt::DrainReaders;
                                return Step::Do(Op::SpinLoad {
                                    line: self.readers,
                                    pause: self.pause,
                                    until: SpinCond::Equals(0),
                                    max: None,
                                });
                            }
                        }
                    }
                    Step::Released => unreachable!("acquire cannot release"),
                },
                RwAcqSt::BumpReaders => {
                    debug_assert!(matches!(last, OpResult::Value(_)));
                    let rel = self.unlock.take().expect("release machine reserved");
                    self.st = RwAcqSt::ReleaseAfterBump(rel);
                    last = OpResult::Started;
                }
                RwAcqSt::ReleaseAfterBump(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return Step::Do(op),
                    Step::Released => return Step::Acquired(self.handover),
                    Step::Acquired(_) => unreachable!("release cannot acquire"),
                },
                RwAcqSt::DrainReaders => {
                    debug_assert!(matches!(last, OpResult::Value(0)));
                    return Step::Acquired(self.handover);
                }
            }
        }
    }
}

enum RwRelSt {
    DecReaders,
    Unlock(RelSm),
    Done,
}

/// Reader/writer release state machine.
pub struct RwRelSm {
    #[expect(dead_code, reason = "kept for symmetry and debugging")]
    mode: RwMode,
    readers: LineId,
    st: RwRelSt,
}

impl RwRelSm {
    /// Advances the release (same protocol as [`RelSm::on`]).
    pub fn on(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Step {
        match &mut self.st {
            RwRelSt::DecReaders => match last {
                OpResult::Started => {
                    self.st = RwRelSt::Done;
                    Step::Do(Op::Rmw(self.readers, RmwKind::FetchAdd(u64::MAX)))
                }
                other => panic!("rwlock read release: unexpected {other:?}"),
            },
            RwRelSt::Done => {
                debug_assert!(matches!(last, OpResult::Value(_)));
                Step::Released
            }
            RwRelSt::Unlock(sm) => match sm.on(rt, last) {
                Step::Do(op) => Step::Do(op),
                Step::Released => Step::Released,
                Step::Acquired(_) => unreachable!("release cannot acquire"),
            },
        }
    }
}
