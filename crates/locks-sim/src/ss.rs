//! The spin-then-sleep communication benchmark of Figure 7 (`ss-T`).
//!
//! At most two threads are *active* at any time; the rest sleep on a futex.
//! Active threads hand a token to each other through user-space spinning.
//! After `T` busy-waiting handovers, the token holder wakes one sleeper to
//! take its slot and goes to sleep itself — so `T` is the ratio of
//! busy-waiting handovers over futex handovers, exactly the knob the paper
//! sweeps. The degenerate modes reproduce the figure's baselines: `spin`
//! passes the token around *all* threads with busy waiting, `sleep` hands
//! over exclusively through futex wake-ups.
//!
//! Scenario lines: a `token` word (holds `tid + 1` of the thread whose turn
//! it is), a `sleep` futex word, and two `slot` words naming the active
//! pair (0 marks a slot whose replacement is still waking up). Only the
//! token holder ever retires, so at most one slot is empty at a time; a
//! holder defers retirement while its partner slot is empty.

use std::rc::Rc;

use poly_sim::{LineId, Op, OpResult, PauseKind, Program, RmwKind, SimBuilder, SpinCond, ThreadRt};

/// Communication flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsMode {
    /// All handovers through futex sleep/wake ("sleep" in Figure 7).
    SleepOnly,
    /// All threads spin on the token ("spin" in Figure 7).
    SpinOnly,
    /// Two active threads spin; every `T` spin handovers, one futex
    /// handover rotates a sleeper in (`ss-T` in Figure 7).
    SpinSleep(u64),
}

impl SsMode {
    /// Label used in the figure.
    pub fn label(&self) -> String {
        match self {
            SsMode::SleepOnly => "sleep".into(),
            SsMode::SpinOnly => "spin".into(),
            SsMode::SpinSleep(t) => format!("ss-{t}"),
        }
    }
}

/// Shared lines of one `ss` scenario.
#[derive(Clone)]
pub struct SsShared {
    mode: SsMode,
    threads: usize,
    token: LineId,
    sleep: LineId,
    slots: Rc<[LineId; 2]>,
}

impl SsShared {
    /// Allocates the scenario lines. Thread ids must be `0..threads` in
    /// spawn order.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn alloc(b: &mut SimBuilder, mode: SsMode, threads: usize) -> Self {
        assert!(threads >= 1, "ss needs at least one thread");
        // Thread 0 holds the token initially; slots start with threads 0/1.
        let token = b.alloc_line(1);
        let sleep = b.alloc_line(0);
        let slot_a = b.alloc_line(1);
        let slot_b = b.alloc_line(if threads >= 2 { 2 } else { 0 });
        Self { mode, threads, token, sleep, slots: Rc::new([slot_a, slot_b]) }
    }

    /// Builds the program for thread `tid`.
    pub fn program(&self, tid: usize) -> SsProgram {
        SsProgram { sh: self.clone(), tid, st: St::Boot, quota: 0, my_slot: 0 }
    }
}

enum St {
    Boot,
    // SpinOnly / SpinSleep active path.
    AwaitToken,
    WaitPartner,
    PassToken,
    RetireCheck,
    RetireSlot,
    RetireWake,
    RetireLoadPartner,
    RetirePass,
    Sleeping,
    ClaimProbeA,
    ClaimStore,
    // SleepOnly chain.
    BootWork,
    ChainWake,
    ChainSleep,
    SoloWork,
    SoloWake,
}

/// One thread of the `ss` benchmark; build via [`SsShared::program`].
pub struct SsProgram {
    sh: SsShared,
    tid: usize,
    st: St,
    quota: u64,
    my_slot: usize,
}

impl SsProgram {
    fn spin_token(&self) -> Op {
        Op::SpinLoad {
            line: self.sh.token,
            pause: PauseKind::Mbar,
            until: SpinCond::Equals(self.tid as u64 + 1),
            max: None,
        }
    }

    fn other_slot(&self) -> LineId {
        self.sh.slots[1 - self.my_slot]
    }

    fn my_slot_line(&self) -> LineId {
        self.sh.slots[self.my_slot]
    }
}

impl Program for SsProgram {
    fn resume(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Op {
        let n = self.sh.threads;
        match self.sh.mode {
            SsMode::SleepOnly => self.resume_sleep_only(rt, last, n),
            SsMode::SpinOnly => self.resume_spin_only(rt, last, n),
            SsMode::SpinSleep(t) => self.resume_spin_sleep(rt, last, n, t),
        }
    }
}

impl SsProgram {
    fn resume_sleep_only(&mut self, rt: &mut ThreadRt<'_>, _last: OpResult, n: usize) -> Op {
        if n == 1 {
            // Degenerate: a lone thread measuring wake-call round-trips.
            return match self.st {
                St::Boot | St::SoloWake => {
                    self.st = St::SoloWork;
                    Op::Work(100)
                }
                St::SoloWork => {
                    rt.counters.ops += 1;
                    self.st = St::SoloWake;
                    Op::FutexWake { line: self.sh.sleep, n: 1 }
                }
                _ => unreachable!("solo sleep-only state"),
            };
        }
        match self.st {
            St::Boot => {
                if self.tid == 0 {
                    // Give everyone else time to fall asleep.
                    self.st = St::BootWork;
                    Op::Work(200_000)
                } else {
                    self.st = St::ChainSleep;
                    Op::FutexWait { line: self.sh.sleep, expect: 0, timeout: None }
                }
            }
            St::BootWork | St::ChainSleep => {
                // Our turn (either bootstrapping or woken up).
                rt.counters.ops += 1;
                rt.counters.futex_handovers += 1;
                self.st = St::ChainWake;
                Op::FutexWake { line: self.sh.sleep, n: 1 }
            }
            St::ChainWake => {
                self.st = St::ChainSleep;
                Op::FutexWait { line: self.sh.sleep, expect: 0, timeout: None }
            }
            _ => unreachable!("sleep-only state"),
        }
    }

    fn resume_spin_only(&mut self, rt: &mut ThreadRt<'_>, _last: OpResult, n: usize) -> Op {
        match self.st {
            St::Boot => {
                self.st = St::AwaitToken;
                self.spin_token()
            }
            St::AwaitToken => {
                rt.counters.ops += 1;
                rt.counters.spin_handovers += 1;
                self.st = St::PassToken;
                let next = (self.tid + 1) % n;
                Op::Rmw(self.sh.token, RmwKind::Store(next as u64 + 1))
            }
            St::PassToken => {
                self.st = St::AwaitToken;
                self.spin_token()
            }
            _ => unreachable!("spin-only state"),
        }
    }

    fn resume_spin_sleep(&mut self, rt: &mut ThreadRt<'_>, last: OpResult, n: usize, t: u64) -> Op {
        if n <= 2 {
            // Nobody to rotate in: identical to spin-only.
            return self.resume_spin_only(rt, last, n);
        }
        match self.st {
            St::Boot => {
                if self.tid < 2 {
                    self.my_slot = self.tid;
                    self.st = St::AwaitToken;
                    self.spin_token()
                } else {
                    self.st = St::Sleeping;
                    Op::FutexWait { line: self.sh.sleep, expect: 0, timeout: None }
                }
            }
            St::AwaitToken => {
                rt.counters.ops += 1;
                rt.counters.spin_handovers += 1;
                self.quota = self.quota.saturating_add(1);
                if self.quota >= t {
                    // Candidate retirement: only if the partner slot is
                    // occupied (at most one wake-up in flight at a time).
                    self.st = St::RetireCheck;
                    Op::Load(self.other_slot())
                } else {
                    self.st = St::WaitPartner;
                    Op::SpinLoad {
                        line: self.other_slot(),
                        pause: PauseKind::Mbar,
                        until: SpinCond::Differs(0),
                        max: None,
                    }
                }
            }
            St::RetireCheck => {
                if last.value() == 0 {
                    // Partner still waking a replacement: defer retirement
                    // and keep communicating (quota stays saturated).
                    self.st = St::WaitPartner;
                    Op::SpinLoad {
                        line: self.other_slot(),
                        pause: PauseKind::Mbar,
                        until: SpinCond::Differs(0),
                        max: None,
                    }
                } else {
                    self.quota = 0;
                    self.st = St::RetireSlot;
                    Op::Rmw(self.my_slot_line(), RmwKind::Store(0))
                }
            }
            St::WaitPartner => {
                let occupant = last.value();
                debug_assert!(occupant != 0);
                self.st = St::PassToken;
                Op::Rmw(self.sh.token, RmwKind::Store(occupant))
            }
            St::PassToken => {
                self.st = St::AwaitToken;
                self.spin_token()
            }
            St::RetireSlot => {
                rt.counters.futex_handovers += 1;
                self.st = St::RetireWake;
                Op::FutexWake { line: self.sh.sleep, n: 1 }
            }
            St::RetireWake => {
                self.st = St::RetireLoadPartner;
                Op::Load(self.other_slot())
            }
            St::RetireLoadPartner => {
                let occupant = last.value();
                debug_assert!(occupant != 0, "partner slot must be occupied while retiring");
                self.st = St::RetirePass;
                Op::Rmw(self.sh.token, RmwKind::Store(occupant))
            }
            St::RetirePass => {
                self.st = St::Sleeping;
                Op::FutexWait { line: self.sh.sleep, expect: 0, timeout: None }
            }
            St::Sleeping => {
                // Woken: claim the free slot (probe A first; at most one
                // slot is free, so a non-zero A means B is ours).
                self.st = St::ClaimProbeA;
                Op::Load(self.sh.slots[0])
            }
            St::ClaimProbeA => {
                self.my_slot = if last.value() == 0 { 0 } else { 1 };
                self.quota = 0;
                self.st = St::ClaimStore;
                Op::Rmw(self.my_slot_line(), RmwKind::Store(self.tid as u64 + 1))
            }
            St::ClaimStore => {
                self.st = St::AwaitToken;
                self.spin_token()
            }
            _ => unreachable!("spin-sleep state"),
        }
    }
}
