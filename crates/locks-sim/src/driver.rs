//! The lock-stress workload: acquire, hold, release, think, repeat.

use poly_sim::{Cycles, Op, OpResult, Program, ThreadRt};
use rand::Rng;

use crate::lock::SimLock;
use crate::sm::{AcqSm, Handover, RelSm, Step};

/// A duration distribution for critical sections and think times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Always the same length.
    Fixed(Cycles),
    /// Uniform in `[lo, hi]`.
    Uniform(Cycles, Cycles),
    /// Exponential with the given mean (heavy-ish tail, memoryless).
    Exp(Cycles),
}

impl Dist {
    /// Draws one duration.
    pub fn sample(&self, rng: &mut impl Rng) -> Cycles {
        match *self {
            Dist::Fixed(c) => c,
            Dist::Uniform(lo, hi) => {
                if lo >= hi {
                    lo
                } else {
                    rng.random_range(lo..=hi)
                }
            }
            Dist::Exp(mean) => {
                if mean == 0 {
                    0
                } else {
                    let u: f64 = rng.random::<f64>().max(1e-12);
                    (-(u.ln()) * mean as f64).round() as Cycles
                }
            }
        }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Fixed(c) => c as f64,
            Dist::Uniform(lo, hi) => (lo + hi) as f64 / 2.0,
            Dist::Exp(mean) => mean as f64,
        }
    }
}

/// Configuration of a [`LockStress`] thread.
#[derive(Debug, Clone, Copy)]
pub struct LockStressConfig {
    /// Critical-section length.
    pub cs: Dist,
    /// Think time between releases and the next acquisition.
    pub non_cs: Dist,
}

enum Phase {
    Init,
    Acquiring(AcqSm),
    InCs,
    Releasing(RelSm),
    NonCs,
}

/// The paper's microbenchmark thread (§5.2): repeatedly picks a lock
/// (uniformly when several are given, as in Figure 12), acquires it, holds
/// it for a critical section, releases it, then "thinks".
///
/// One completed critical section counts as one operation; acquisition
/// latencies and handover types are recorded in the thread counters.
pub struct LockStress {
    locks: Vec<SimLock>,
    cfg: LockStressConfig,
    phase: Phase,
    current: usize,
    acq_started: Cycles,
}

impl LockStress {
    /// Creates a stress thread over the given locks (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `locks` is empty.
    pub fn new(locks: Vec<SimLock>, cfg: LockStressConfig) -> Self {
        assert!(!locks.is_empty(), "LockStress needs at least one lock");
        Self { locks, cfg, phase: Phase::Init, current: 0, acq_started: 0 }
    }
}

impl Program for LockStress {
    fn resume(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Op {
        let mut last = last;
        loop {
            match &mut self.phase {
                Phase::Init => {
                    self.current = if self.locks.len() == 1 {
                        0
                    } else {
                        rt.rng.random_range(0..self.locks.len())
                    };
                    self.acq_started = rt.now;
                    self.phase = Phase::Acquiring(self.locks[self.current].begin_acquire(rt.tid));
                    last = OpResult::Started;
                }
                Phase::Acquiring(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Acquired(h) => {
                        rt.counters.acquires += 1;
                        rt.counters.acquire_latency.record(rt.now - self.acq_started);
                        match h {
                            Handover::Spin | Handover::Uncontended => {
                                rt.counters.spin_handovers += 1
                            }
                            Handover::Futex => rt.counters.futex_handovers += 1,
                        }
                        rt.enter_cs(self.locks[self.current].key());
                        self.phase = Phase::InCs;
                        let cs = self.cfg.cs.sample(rt.rng);
                        return Op::Work(cs.max(1));
                    }
                    Step::Released => unreachable!("acquire cannot release"),
                },
                Phase::InCs => {
                    debug_assert_eq!(last, OpResult::Done);
                    rt.exit_cs(self.locks[self.current].key());
                    self.phase = Phase::Releasing(self.locks[self.current].begin_release(rt.tid));
                    last = OpResult::Started;
                }
                Phase::Releasing(sm) => match sm.on(rt, last) {
                    Step::Do(op) => return op,
                    Step::Released => {
                        rt.counters.ops += 1;
                        let think = self.cfg.non_cs.sample(rt.rng);
                        if think == 0 {
                            self.phase = Phase::Init;
                            continue;
                        }
                        self.phase = Phase::NonCs;
                        return Op::Work(think);
                    }
                    Step::Acquired(_) => unreachable!("release cannot acquire"),
                },
                Phase::NonCs => {
                    debug_assert_eq!(last, OpResult::Done);
                    self.phase = Phase::Init;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dist_sampling_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(Dist::Fixed(42).sample(&mut rng), 42);
        for _ in 0..100 {
            let v = Dist::Uniform(10, 20).sample(&mut rng);
            assert!((10..=20).contains(&v));
        }
        let mean = 1000.0;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| Dist::Exp(1000).sample(&mut rng)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed / mean - 1.0).abs() < 0.05, "exp mean {observed}");
    }

    #[test]
    fn degenerate_dists() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(Dist::Uniform(7, 7).sample(&mut rng), 7);
        assert_eq!(Dist::Exp(0).sample(&mut rng), 0);
        assert_eq!(Dist::Fixed(5).mean(), 5.0);
    }
}
