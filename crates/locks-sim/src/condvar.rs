//! A futex-based condition variable (sequence-counter construction).
//!
//! RocksDB's write queue and parts of MySQL coordinate through
//! `pthread_cond_*`; this is the standard futex condvar: waiters snapshot a
//! sequence word, release the mutex, sleep on the sequence, and reacquire
//! the mutex on wake-up; signalers bump the sequence and wake sleepers.

use poly_sim::{LineId, Op, OpResult, SimBuilder, ThreadRt, Tid};

use crate::lock::SimLock;
use crate::sm::{AcqSm, RelSm, Step};

/// The condition-variable instance.
#[derive(Clone, Copy)]
pub struct SimCondvar {
    seq: LineId,
}

impl SimCondvar {
    /// Allocates a condition variable.
    pub fn alloc(b: &mut SimBuilder) -> Self {
        Self { seq: b.alloc_line(0) }
    }

    /// Starts a `wait` by `tid`, which must currently hold `lock`.
    ///
    /// The machine releases the lock, sleeps, and reacquires the lock; it
    /// finishes with [`Step::Acquired`].
    pub fn begin_wait(&self, lock: &SimLock, tid: Tid) -> CondSm {
        CondSm {
            seq: self.seq,
            st: CondSt::LoadSeq,
            release: Some(lock.begin_release(tid)),
            reacquire: Some(lock.begin_acquire(tid)),
            signal_n: 0,
            snapshot: 0,
        }
    }

    /// Starts a `signal` (wakes one waiter). The caller may or may not hold
    /// the lock, as with `pthread_cond_signal`. Finishes with
    /// [`Step::Released`].
    pub fn begin_signal(&self) -> CondSm {
        self.begin_wake(1)
    }

    /// Starts a `broadcast` (wakes all waiters).
    pub fn begin_broadcast(&self) -> CondSm {
        self.begin_wake(u32::MAX)
    }

    fn begin_wake(&self, n: u32) -> CondSm {
        CondSm {
            seq: self.seq,
            st: CondSt::Bump,
            release: None,
            reacquire: None,
            signal_n: n,
            snapshot: 0,
        }
    }
}

enum CondSt {
    // Wait path.
    LoadSeq,
    Release,
    Sleep,
    Reacquire,
    // Signal path.
    Bump,
    Wake,
}

/// Condition-variable operation in progress (wait, signal or broadcast).
pub struct CondSm {
    seq: LineId,
    st: CondSt,
    release: Option<RelSm>,
    reacquire: Option<AcqSm>,
    signal_n: u32,
    snapshot: u64,
}

impl CondSm {
    /// Advances the operation. Waits finish with [`Step::Acquired`] (the
    /// mutex is held again); signals/broadcasts finish with
    /// [`Step::Released`].
    pub fn on(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Step {
        let mut last = last;
        loop {
            match &mut self.st {
                CondSt::LoadSeq => match last {
                    OpResult::Started => return Step::Do(Op::Load(self.seq)),
                    OpResult::Value(v) => {
                        self.snapshot = v;
                        self.st = CondSt::Release;
                        last = OpResult::Started;
                    }
                    other => panic!("cond wait: unexpected {other:?}"),
                },
                CondSt::Release => {
                    let sm = self.release.as_mut().expect("wait path has a release");
                    match sm.on(rt, last) {
                        Step::Do(op) => return Step::Do(op),
                        Step::Released => {
                            self.st = CondSt::Sleep;
                            return Step::Do(Op::FutexWait {
                                line: self.seq,
                                expect: self.snapshot,
                                timeout: None,
                            });
                        }
                        Step::Acquired(_) => unreachable!(),
                    }
                }
                CondSt::Sleep => {
                    // Woken, timed out, or the sequence moved before we
                    // slept (EAGAIN): all proceed to reacquisition, exactly
                    // like pthread_cond_wait's spurious-wakeup contract.
                    debug_assert!(matches!(last, OpResult::FutexWait(_)));
                    self.st = CondSt::Reacquire;
                    last = OpResult::Started;
                }
                CondSt::Reacquire => {
                    let sm = self.reacquire.as_mut().expect("wait path has a reacquire");
                    match sm.on(rt, last) {
                        Step::Do(op) => return Step::Do(op),
                        Step::Acquired(h) => return Step::Acquired(h),
                        Step::Released => unreachable!(),
                    }
                }
                CondSt::Bump => match last {
                    OpResult::Started => {
                        return Step::Do(Op::Rmw(self.seq, poly_sim::RmwKind::FetchAdd(1)))
                    }
                    OpResult::Value(_) => {
                        self.st = CondSt::Wake;
                        return Step::Do(Op::FutexWake { line: self.seq, n: self.signal_n });
                    }
                    other => panic!("cond signal: unexpected {other:?}"),
                },
                CondSt::Wake => {
                    debug_assert!(matches!(last, OpResult::FutexWake { .. }));
                    return Step::Released;
                }
            }
        }
    }
}
