//! Pure waiting workloads for §4: what does waiting *cost*?
//!
//! Threads wait forever on a lock that is never released, in one of the
//! paper's styles, so power and CPI can be measured in isolation
//! (Figures 3, 4 and 5).

use poly_sim::{LineId, Op, OpResult, PauseKind, Program, SpinCond, ThreadRt, VfPoint};

/// A §4 waiting style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStyle {
    /// Sleep with futex (the word never changes).
    Sleep,
    /// Global spinning: hammer atomic exchanges on the lock word.
    GlobalSpin,
    /// Local spinning with the given pausing flavor.
    LocalSpin(PauseKind),
    /// Block in `monitor/mwait`.
    Mwait,
    /// Drop the core to the given VF point, then spin locally.
    Dvfs(VfPoint, PauseKind),
}

impl WaitStyle {
    /// Label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            WaitStyle::Sleep => "sleeping",
            WaitStyle::GlobalSpin => "global",
            WaitStyle::LocalSpin(PauseKind::None) => "local",
            WaitStyle::LocalSpin(PauseKind::Nop) => "local-nop",
            WaitStyle::LocalSpin(PauseKind::Pause) => "local-pause",
            WaitStyle::LocalSpin(PauseKind::Mbar) => "local-mbar",
            WaitStyle::Mwait => "monitor/mwait",
            WaitStyle::Dvfs(..) => "dvfs",
        }
    }
}

/// A thread that waits forever on `line` (which must hold 1 and never
/// change) in the configured style.
pub struct Waiter {
    line: LineId,
    style: WaitStyle,
    vf_set: bool,
}

impl Waiter {
    /// Creates a waiter on the given (never-released) lock line.
    pub fn new(line: LineId, style: WaitStyle) -> Self {
        Self { line, style, vf_set: false }
    }
}

impl Program for Waiter {
    fn resume(&mut self, _rt: &mut ThreadRt<'_>, _last: OpResult) -> Op {
        match self.style {
            WaitStyle::Sleep => Op::FutexWait { line: self.line, expect: 1, timeout: None },
            WaitStyle::GlobalSpin => Op::Rmw(self.line, poly_sim::RmwKind::Swap(1)),
            WaitStyle::LocalSpin(pause) => {
                Op::SpinLoad { line: self.line, pause, until: SpinCond::Equals(0), max: None }
            }
            WaitStyle::Mwait => Op::MonitorMwait { line: self.line, expect: 1 },
            WaitStyle::Dvfs(vf, pause) => {
                if !self.vf_set {
                    self.vf_set = true;
                    Op::SetVf(vf)
                } else {
                    Op::SpinLoad { line: self.line, pause, until: SpinCond::Equals(0), max: None }
                }
            }
        }
    }
}
