//! Acquire/release state machines with uniform dispatch.

use std::rc::Rc;

use poly_sim::{Op, OpResult, ThreadRt, Tid};

use crate::algos::{clh, mcs, mutex, mutexee, tas, ticket, ttas};
use crate::lock::{LockInner, LockKind, PathOverhead};

/// How an acquisition obtained the lock (for the paper's handover
/// statistics and MUTEXEE's adaptation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handover {
    /// The lock was free (or nearly so) on arrival.
    Uncontended,
    /// Obtained after busy-waiting in user space.
    Spin,
    /// Obtained after at least one futex sleep.
    Futex,
}

/// One step of a lock state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Issue this operation and call `on` again with its result.
    Do(Op),
    /// The lock is now held.
    Acquired(Handover),
    /// The lock is now released.
    Released,
}

/// An in-progress lock acquisition.
pub struct AcqSm {
    lock: Rc<LockInner>,
    tid: Tid,
    state: AcqState,
    pre: Option<u64>,
    awaiting_pre: bool,
}

pub(crate) enum AcqState {
    Tas(tas::Acq),
    Ttas(ttas::Acq),
    Ticket(ticket::Acq),
    Mcs(mcs::Acq),
    Clh(clh::Acq),
    Mutex(mutex::Acq),
    Mutexee(mutexee::Acq),
}

impl AcqSm {
    pub(crate) fn new(lock: Rc<LockInner>, tid: Tid) -> Self {
        let state = match lock.kind {
            LockKind::Tas => AcqState::Tas(tas::Acq::new()),
            LockKind::Ttas => AcqState::Ttas(ttas::Acq::new()),
            LockKind::Ticket => AcqState::Ticket(ticket::Acq::new()),
            LockKind::Mcs => AcqState::Mcs(mcs::Acq::new()),
            LockKind::Clh => AcqState::Clh(clh::Acq::new()),
            LockKind::Mutex => AcqState::Mutex(mutex::Acq::new()),
            LockKind::Mutexee => AcqState::Mutexee(mutexee::Acq::new()),
        };
        let overhead = lock.params.overhead.unwrap_or_else(|| PathOverhead::default_for(lock.kind));
        let pre = (overhead.lock > 0).then_some(overhead.lock);
        Self { lock, tid, state, pre, awaiting_pre: false }
    }

    /// Advances the acquisition. Call first with [`OpResult::Started`], then
    /// with the result of each requested operation.
    pub fn on(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Step {
        // Fast-path bookkeeping cost precedes the protocol itself.
        let mut last = last;
        if let Some(c) = self.pre.take() {
            debug_assert!(matches!(last, OpResult::Started));
            self.awaiting_pre = true;
            return Step::Do(Op::Work(c));
        }
        if self.awaiting_pre {
            self.awaiting_pre = false;
            last = OpResult::Started;
        }
        let step = match &mut self.state {
            AcqState::Tas(s) => s.on(&self.lock, self.tid, rt, last),
            AcqState::Ttas(s) => s.on(&self.lock, self.tid, rt, last),
            AcqState::Ticket(s) => s.on(&self.lock, self.tid, rt, last),
            AcqState::Mcs(s) => s.on(&self.lock, self.tid, rt, last),
            AcqState::Clh(s) => s.on(&self.lock, self.tid, rt, last),
            AcqState::Mutex(s) => s.on(&self.lock, self.tid, rt, last),
            AcqState::Mutexee(s) => s.on(&self.lock, self.tid, rt, last),
        };
        if let Step::Acquired(h) = step {
            if self.lock.kind == LockKind::Mutexee {
                mutexee::note_acquisition(&self.lock, h);
            }
        }
        step
    }
}

/// An in-progress lock release.
pub struct RelSm {
    lock: Rc<LockInner>,
    tid: Tid,
    state: RelState,
    pre: Option<u64>,
    awaiting_pre: bool,
}

pub(crate) enum RelState {
    Tas(tas::Rel),
    Ttas(ttas::Rel),
    Ticket(ticket::Rel),
    Mcs(mcs::Rel),
    Clh(clh::Rel),
    Mutex(mutex::Rel),
    Mutexee(mutexee::Rel),
}

impl RelSm {
    pub(crate) fn new(lock: Rc<LockInner>, tid: Tid) -> Self {
        let state = match lock.kind {
            LockKind::Tas => RelState::Tas(tas::Rel::new()),
            LockKind::Ttas => RelState::Ttas(ttas::Rel::new()),
            LockKind::Ticket => RelState::Ticket(ticket::Rel::new()),
            LockKind::Mcs => RelState::Mcs(mcs::Rel::new()),
            LockKind::Clh => RelState::Clh(clh::Rel::new()),
            LockKind::Mutex => RelState::Mutex(mutex::Rel::new()),
            LockKind::Mutexee => RelState::Mutexee(mutexee::Rel::new()),
        };
        let overhead = lock.params.overhead.unwrap_or_else(|| PathOverhead::default_for(lock.kind));
        let pre = (overhead.unlock > 0).then_some(overhead.unlock);
        Self { lock, tid, state, pre, awaiting_pre: false }
    }

    /// Advances the release. Call first with [`OpResult::Started`], then
    /// with the result of each requested operation.
    pub fn on(&mut self, rt: &mut ThreadRt<'_>, last: OpResult) -> Step {
        let mut last = last;
        if let Some(c) = self.pre.take() {
            debug_assert!(matches!(last, OpResult::Started));
            self.awaiting_pre = true;
            return Step::Do(Op::Work(c));
        }
        if self.awaiting_pre {
            self.awaiting_pre = false;
            last = OpResult::Started;
        }
        match &mut self.state {
            RelState::Tas(s) => s.on(&self.lock, self.tid, rt, last),
            RelState::Ttas(s) => s.on(&self.lock, self.tid, rt, last),
            RelState::Ticket(s) => s.on(&self.lock, self.tid, rt, last),
            RelState::Mcs(s) => s.on(&self.lock, self.tid, rt, last),
            RelState::Clh(s) => s.on(&self.lock, self.tid, rt, last),
            RelState::Mutex(s) => s.on(&self.lock, self.tid, rt, last),
            RelState::Mutexee(s) => s.on(&self.lock, self.tid, rt, last),
        }
    }
}
