//! Lock construction: kinds, parameters and shared state.

use std::cell::RefCell;
use std::rc::Rc;

use poly_sim::{Cycles, LineId, PauseKind, SimBuilder, Tid};

use crate::sm::{AcqSm, RelSm};

/// The lock algorithms evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Test-and-set: global spinning with atomic exchanges.
    Tas,
    /// Test-and-test-and-set: local spinning, then CAS.
    Ttas,
    /// Ticket lock: FIFO, local spinning on the owner field.
    Ticket,
    /// MCS queue lock: FIFO, local spinning on a per-thread node.
    Mcs,
    /// CLH queue lock: FIFO, local spinning on the predecessor's node.
    Clh,
    /// glibc-style futex mutex (sleeping).
    Mutex,
    /// The paper's optimized futex mutex (§5.1).
    Mutexee,
}

impl LockKind {
    /// All algorithms, in the paper's table order.
    pub const ALL: [LockKind; 7] = [
        LockKind::Mutex,
        LockKind::Tas,
        LockKind::Ttas,
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutexee,
        LockKind::Clh,
    ];

    /// Uppercase label as used in the paper.
    pub const fn label(&self) -> &'static str {
        match self {
            LockKind::Tas => "TAS",
            LockKind::Ttas => "TTAS",
            LockKind::Ticket => "TICKET",
            LockKind::Mcs => "MCS",
            LockKind::Clh => "CLH",
            LockKind::Mutex => "MUTEX",
            LockKind::Mutexee => "MUTEXEE",
        }
    }

    /// Whether the algorithm ever sleeps (uses futex).
    pub const fn sleeps(&self) -> bool {
        matches!(self, LockKind::Mutex | LockKind::Mutexee)
    }
}

/// Parameters of the glibc-style MUTEX.
#[derive(Debug, Clone, Copy)]
pub struct MutexParams {
    /// Optional bounded user-space spin before the futex path, in cycles
    /// (`PTHREAD_MUTEX_ADAPTIVE_NP`-style). The paper uses the default
    /// MUTEX, i.e. `None`: one acquisition attempt, then sleep.
    pub adaptive_spin: Option<Cycles>,
    /// Pausing used while spinning (glibc uses `pause`).
    pub pause: PauseKind,
}

impl Default for MutexParams {
    fn default() -> Self {
        Self { adaptive_spin: None, pause: PauseKind::Pause }
    }
}

/// Operating mode of MUTEXEE (§5.1): the lock periodically flips between
/// them based on the observed futex-handover ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutexeeMode {
    /// Long spinning (~8000 cycles in `lock`, ~384-cycle user-space wait in
    /// `unlock`).
    Spin,
    /// Short spinning (~256 cycles in `lock`, ~128 in `unlock`), used when
    /// most handovers go through futex anyway, to avoid useless spinning.
    Mutex,
}

/// Parameters of MUTEXEE, defaulted to the paper's values (Table 1, §5.1).
#[derive(Debug, Clone, Copy)]
pub struct MutexeeParams {
    /// Spin budget in `lock()` while in [`MutexeeMode::Spin`].
    pub spin_budget: Cycles,
    /// Spin budget in `lock()` while in [`MutexeeMode::Mutex`].
    pub spin_budget_mutex_mode: Cycles,
    /// User-space wait in `unlock()` while in [`MutexeeMode::Spin`]
    /// ("proportional to the maximum coherence latency", 384 on the Xeon).
    pub unlock_wait: Cycles,
    /// User-space wait in `unlock()` while in [`MutexeeMode::Mutex`].
    pub unlock_wait_mutex_mode: Cycles,
    /// Acquisitions between mode re-evaluations.
    pub adapt_period: u32,
    /// Futex-to-total handover ratio above which the lock switches to
    /// [`MutexeeMode::Mutex`] (the paper uses 30%).
    pub futex_ratio_threshold: f64,
    /// Optional futex-sleep timeout bounding tail latency (Figure 10); a
    /// thread woken by timeout spins until it acquires, without sleeping
    /// again.
    pub sleep_timeout: Option<Cycles>,
    /// Pausing in spin loops (the paper uses `mfence`).
    pub pause: PauseKind,
}

impl Default for MutexeeParams {
    fn default() -> Self {
        Self {
            spin_budget: 8_000,
            spin_budget_mutex_mode: 256,
            unlock_wait: 384,
            unlock_wait_mutex_mode: 128,
            adapt_period: 255,
            futex_ratio_threshold: 0.30,
            sleep_timeout: None,
            pause: PauseKind::Mbar,
        }
    }
}

/// Fixed instruction-path cost of a lock's fast path, beyond its atomic
/// operations.
///
/// The memory model prices an atomic at a handful of cycles; real lock
/// implementations additionally retire bookkeeping instructions (glibc
/// MUTEX's sanity checks and waiter handling, MUTEXEE's adaptation
/// counters, MCS's node addressing). Table 2 of the paper attributes the
/// single-threaded ranking — simple spinlocks > MUTEXEE > MCS > MUTEX —
/// exactly to this "complexity", so it is modeled explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathOverhead {
    /// Extra cycles on the acquire path.
    pub lock: Cycles,
    /// Extra cycles on the release path.
    pub unlock: Cycles,
}

impl PathOverhead {
    /// The calibrated default for an algorithm.
    pub fn default_for(kind: LockKind) -> Self {
        match kind {
            LockKind::Tas | LockKind::Ttas | LockKind::Ticket | LockKind::Clh => {
                Self { lock: 0, unlock: 0 }
            }
            LockKind::Mcs => Self { lock: 10, unlock: 10 },
            LockKind::Mutex => Self { lock: 40, unlock: 40 },
            LockKind::Mutexee => Self { lock: 30, unlock: 25 },
        }
    }
}

/// Per-lock tunables.
#[derive(Debug, Clone, Copy)]
pub struct LockParams {
    /// Pausing used by the local-spinning spinlocks (the paper settles on a
    /// memory barrier, §4.2).
    pub spin_pause: PauseKind,
    /// MUTEX configuration.
    pub mutex: MutexParams,
    /// MUTEXEE configuration.
    pub mutexee: MutexeeParams,
    /// Fast-path instruction overhead; `None` uses
    /// [`PathOverhead::default_for`] the algorithm.
    pub overhead: Option<PathOverhead>,
}

impl Default for LockParams {
    fn default() -> Self {
        Self {
            spin_pause: PauseKind::Mbar,
            mutex: MutexParams::default(),
            mutexee: MutexeeParams::default(),
            overhead: None,
        }
    }
}

/// MUTEXEE adaptive-mode statistics (shared by all users of one lock).
#[derive(Debug)]
pub(crate) struct MutexeeShared {
    pub mode: MutexeeMode,
    pub acquisitions: u32,
    pub futex_handovers: u32,
}

/// Per-thread queue-lock bookkeeping.
#[derive(Debug, Clone, Copy)]
pub(crate) struct McsNode {
    /// Line the node owner spins on (1 = wait, 0 = go).
    pub locked: LineId,
    /// Line holding the successor thread id + 1 (0 = none).
    pub next: LineId,
}

pub(crate) struct LockInner {
    pub kind: LockKind,
    pub params: LockParams,
    /// Mutual-exclusion tracking key (the lock word's address).
    pub key: u64,
    /// Main lock word. TAS/TTAS: 0 free / 1 held. TICKET: packed
    /// next(high32)/owner(low32). MCS/CLH: tail pointer (line id + 1 /
    /// thread id + 1; 0 = empty). MUTEX: 0/1/2. MUTEXEE: 0/1.
    pub word: LineId,
    /// MUTEXEE sleeper count.
    pub waiters: Option<LineId>,
    /// MCS per-thread nodes, indexed by thread id.
    pub mcs_nodes: Vec<McsNode>,
    /// CLH per-thread current node line, indexed by thread id (nodes are
    /// recycled through predecessors, as in the original algorithm).
    pub clh_node: RefCell<Vec<LineId>>,
    /// CLH predecessor node recorded at acquire time, consumed at release.
    pub clh_pred: RefCell<Vec<Option<LineId>>>,
    pub mutexee: RefCell<MutexeeShared>,
}

/// A simulated lock instance, shareable across thread programs.
///
/// # Examples
///
/// ```
/// use poly_locks_sim::{Dist, LockKind, LockParams, LockStress, LockStressConfig, SimLock};
/// use poly_sim::{MachineConfig, PinPolicy, RunSpec, SimBuilder};
///
/// let mut b = SimBuilder::new(MachineConfig::tiny());
/// let lock = SimLock::alloc(&mut b, LockKind::Ticket, 4, LockParams::default());
/// for _ in 0..4 {
///     b.spawn(
///         Box::new(LockStress::new(
///             vec![lock.clone()],
///             LockStressConfig { cs: Dist::Fixed(1000), non_cs: Dist::Fixed(100) },
///         )),
///         PinPolicy::PaperOrder,
///     );
/// }
/// let report = b.run(RunSpec { duration: 5_000_000, warmup: 500_000 });
/// assert!(report.total_ops > 0);
/// ```
#[derive(Clone)]
pub struct SimLock {
    pub(crate) inner: Rc<LockInner>,
}

impl SimLock {
    /// Allocates a lock of the given kind for up to `threads` threads.
    ///
    /// `threads` must cover every thread id that will ever use the lock
    /// (queue locks pre-allocate per-thread nodes).
    pub fn alloc(b: &mut SimBuilder, kind: LockKind, threads: usize, params: LockParams) -> Self {
        // CLH's tail must never be empty: it starts pointing at a released
        // dummy node so node recycling stays sound.
        let clh_dummy = if kind == LockKind::Clh { Some(b.alloc_line(0)) } else { None };
        let word = b.alloc_line(clh_dummy.map_or(0, |d| d.addr() + 1));
        let waiters = if kind == LockKind::Mutexee { Some(b.alloc_line(0)) } else { None };
        let mut mcs_nodes = Vec::new();
        if kind == LockKind::Mcs {
            for _ in 0..threads {
                mcs_nodes.push(McsNode { locked: b.alloc_line(0), next: b.alloc_line(0) });
            }
        }
        let mut clh_nodes = Vec::new();
        if kind == LockKind::Clh {
            for _ in 0..threads {
                // Nodes start "released" (0); a locking thread stores 1
                // before enqueueing itself.
                clh_nodes.push(b.alloc_line(0));
            }
        }
        Self {
            inner: Rc::new(LockInner {
                kind,
                params,
                key: word.addr(),
                word,
                waiters,
                mcs_nodes,
                clh_node: RefCell::new(clh_nodes),
                clh_pred: RefCell::new(vec![None; threads]),
                mutexee: RefCell::new(MutexeeShared {
                    mode: MutexeeMode::Spin,
                    acquisitions: 0,
                    futex_handovers: 0,
                }),
            }),
        }
    }

    /// The algorithm implemented by this lock.
    pub fn kind(&self) -> LockKind {
        self.inner.kind
    }

    /// The mutual-exclusion tracker key of this lock.
    pub fn key(&self) -> u64 {
        self.inner.key
    }

    /// MUTEXEE's current adaptive mode (for tests and ablations).
    pub fn mutexee_mode(&self) -> MutexeeMode {
        self.inner.mutexee.borrow().mode
    }

    /// Starts an acquisition by thread `tid`.
    pub fn begin_acquire(&self, tid: Tid) -> AcqSm {
        AcqSm::new(self.inner.clone(), tid)
    }

    /// Starts a release by thread `tid` (which must hold the lock).
    pub fn begin_release(&self, tid: Tid) -> RelSm {
        RelSm::new(self.inner.clone(), tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_sim::MachineConfig;

    #[test]
    fn labels_cover_all_kinds() {
        for k in LockKind::ALL {
            assert!(!k.label().is_empty());
        }
        assert!(LockKind::Mutex.sleeps());
        assert!(LockKind::Mutexee.sleeps());
        assert!(!LockKind::Ticket.sleeps());
    }

    #[test]
    fn alloc_reserves_queue_nodes() {
        let mut b = SimBuilder::new(MachineConfig::tiny());
        let mcs = SimLock::alloc(&mut b, LockKind::Mcs, 4, LockParams::default());
        assert_eq!(mcs.inner.mcs_nodes.len(), 4);
        let clh = SimLock::alloc(&mut b, LockKind::Clh, 4, LockParams::default());
        assert_eq!(clh.inner.clh_node.borrow().len(), 4);
        let mtx = SimLock::alloc(&mut b, LockKind::Mutexee, 4, LockParams::default());
        assert!(mtx.inner.waiters.is_some());
    }

    #[test]
    fn paper_defaults_match_table_1() {
        let p = MutexeeParams::default();
        assert_eq!(p.spin_budget, 8_000);
        assert_eq!(p.unlock_wait, 384);
        assert_eq!(p.spin_budget_mutex_mode, 256);
        assert_eq!(p.unlock_wait_mutex_mode, 128);
        assert_eq!(p.pause, PauseKind::Mbar);
        assert_eq!(MutexParams::default().pause, PauseKind::Pause);
    }
}
