//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the criterion API its benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`]/[`Bencher::iter_custom`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Instead of
//! criterion's statistical machinery it runs a short calibrated loop and
//! prints one `ns/iter` figure per benchmark — enough to compare locks by
//! eye and to keep the bench targets compiling and runnable.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configuration and entry point.
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(200),
            warm_up: Duration::from_millis(20),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (kept for API compatibility).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the measurement time of each benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        // The shim has no statistics to stabilize; a fraction of the
        // requested window gives comparable numbers at a fraction of the
        // wall-clock cost (benches also run under `cargo test`).
        self.measurement = d / 4;
        self
    }

    /// Caps the warm-up time of each benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d / 4;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement: self.measurement,
            warm_up: self.warm_up,
            ns_per_iter: None,
            iters: 0,
        };
        f(&mut b);
        match b.ns_per_iter {
            Some(ns) => println!("bench {name:<40} {ns:>12.1} ns/iter ({} iters)", b.iters),
            None => println!("bench {name:<40} (no measurement)"),
        }
        self
    }
}

/// Times the body of one benchmark.
pub struct Bencher {
    measurement: Duration,
    warm_up: Duration,
    ns_per_iter: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Times `f`, growing the batch size until the measurement window is
    /// filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement || iters >= 1 << 24 {
                self.record(iters, elapsed);
                return;
            }
            // Grow towards the window from the observed per-iter cost.
            iters = (iters * 4).min(1 << 24);
        }
    }

    /// Hands the iteration count to `f`, which returns the elapsed time for
    /// exactly that many iterations (criterion's escape hatch for setups
    /// that must amortize, e.g. spawning threads).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Contended-lock bodies are quantum-bound on single-core hosts
        // (every handover costs a scheduler slice); keep those runs small.
        let multi = std::thread::available_parallelism().map(|n| n.get() > 1).unwrap_or(false);
        let (warm_iters, iters) = if multi { (1_000, 50_000) } else { (100, 2_000) };
        black_box(f(warm_iters));
        let elapsed = f(iters);
        self.record(iters, elapsed);
    }

    fn record(&mut self, iters: u64, elapsed: Duration) {
        self.iters = iters;
        self.ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(4))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn iter_measures_something() {
        let mut c = quick();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_custom_passes_counts_through() {
        let mut c = quick();
        let mut seen = 0;
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                seen = iters;
                Duration::from_micros(iters)
            });
        });
        assert!(seen > 0);
    }
}
