//! Scenario orchestration for the "Unlocking Energy" reproduction.
//!
//! Every result in the paper is a *sweep* — lock algorithm x thread count x
//! workload — and the figure binaries used to hand-roll those loops. This
//! crate turns them into data:
//!
//! * [`ScenarioSpec`] — a declarative, serializable description of one
//!   experiment: machine, workload, lock, thread count, duration, seed.
//!   Workloads cover the six [`poly_systems::PaperSystem`] models plus
//!   synthetic scenarios (hot/cold Zipf KV, a producer-consumer pipeline,
//!   readers-writers skew, an oversubscription storm, condvar ping-pong);
//! * [`Registry`] — named, documented, ready-to-run scenarios
//!   ([`Registry::builtin`] ships more than a dozen);
//! * [`SweepRunner`] — fans a [`cross`] product of cells out over OS
//!   threads (each cell is an independent deterministic simulation with its
//!   own derived seed) and collects [`CellReport`]s — throughput, power,
//!   energy per operation, tail latency — for JSON-lines or CSV sinks.
//!
//! # Example
//!
//! ```
//! use poly_scenarios::{cross, MachineKind, Registry, SweepRunner};
//! use poly_locks_sim::LockKind;
//!
//! let reg = Registry::builtin();
//! let base = reg.get("lock-stress").unwrap().spec.clone()
//!     .with_machine(MachineKind::Tiny)
//!     .with_duration(1_000_000, 100_000);
//! let cells = cross(&[base], &[LockKind::Ttas, LockKind::Mutex], &[2], 42);
//! let reports = SweepRunner::with_workers(2).run(&cells);
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.total_ops > 0));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod registry;
mod spec;
mod sweep;
mod synth;

pub use registry::{Registry, RegistryEntry};
pub use spec::{parse_lock, MachineKind, ScenarioSpec, WorkloadSpec};
pub use sweep::{
    cross, cross_capped, cross_shards, write_reports, CellReport, SinkFormat, SweepRunner,
};
