//! Declarative experiment specifications.

use poly_locks_sim::{Dist, LockKind};
use poly_sim::{Cycles, MachineConfig, RunSpec, SimBuilder, SimReport};
use poly_store::KvMix;
use poly_systems::PaperSystem;

use crate::synth;

/// Which simulated machine a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// The paper's 2-socket, 20-core, 40-context Xeon.
    Xeon,
    /// The paper's 4-core, 8-context Core i7 desktop.
    CoreI7,
    /// A minimal 2-context machine for fast smoke runs.
    Tiny,
}

impl MachineKind {
    /// Materializes the machine configuration.
    pub fn config(&self) -> MachineConfig {
        match self {
            MachineKind::Xeon => MachineConfig::xeon(),
            MachineKind::CoreI7 => MachineConfig::core_i7(),
            MachineKind::Tiny => MachineConfig::tiny(),
        }
    }

    /// Stable lowercase label (used in reports and CLI parsing).
    pub const fn label(&self) -> &'static str {
        match self {
            MachineKind::Xeon => "xeon",
            MachineKind::CoreI7 => "core-i7",
            MachineKind::Tiny => "tiny",
        }
    }

    /// Parses a [`MachineKind::label`] back (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "xeon" => Some(MachineKind::Xeon),
            "core-i7" | "corei7" | "i7" => Some(MachineKind::CoreI7),
            "tiny" => Some(MachineKind::Tiny),
            _ => None,
        }
    }
}

/// Parses a lock algorithm from its paper label (case-insensitive).
pub fn parse_lock(s: &str) -> Option<LockKind> {
    LockKind::ALL.into_iter().find(|k| k.label().eq_ignore_ascii_case(s))
}

/// What a scenario's threads actually do.
///
/// Plain data throughout (no trait objects, no floats that would break
/// `PartialEq`), so specs can be compared, stored and serialized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// One of the six modeled systems of §6 (thread count fixed by the
    /// model, see [`PaperSystem::threads`]).
    System(PaperSystem),
    /// The Figure 1 `CopyOnWriteArrayList` stress.
    CowList,
    /// The §5.2 microbenchmark: `n_locks` locks picked uniformly,
    /// configurable critical/non-critical sections.
    LockStress {
        /// Critical-section length distribution.
        cs: Dist,
        /// Between-acquisitions work distribution.
        non_cs: Dist,
        /// Number of locks picked uniformly per iteration.
        n_locks: usize,
    },
    /// A sharded KV store with Zipf-skewed bucket popularity.
    ZipfKv {
        /// Number of bucket locks.
        buckets: usize,
        /// Zipf skew in milli-units (1200 = 1.2; 0 = uniform).
        skew_milli: u32,
        /// Percentage of operations that write.
        write_pct: u32,
    },
    /// The `kv` scenario family: a [`poly_store::KvMix`] op mix (point
    /// gets/puts/removes, full scans, optional write batching) over
    /// `mix.shards` shard locks. The same mix drives the native
    /// `poly-store` service, so simulated and native sweeps line up.
    Kv(KvMix),
    /// A producer-consumer pipeline over a mutex-guarded queue with a
    /// condition variable; the first half of the threads produce (and
    /// never block on the condvar, guaranteeing liveness), the rest
    /// consume.
    Pipeline,
    /// Readers-writers skew over one process-wide rwlock.
    ReadersWriters {
        /// Percentage of operations that take the lock in write mode.
        write_pct: u32,
        /// Mean read-side critical-section length in cycles.
        read_cs: Cycles,
        /// Mean write-side critical-section length in cycles.
        write_cs: Cycles,
    },
    /// Thread oversubscription storm: unpinned threads, several short
    /// critical sections per operation over a few hot locks.
    OversubStorm {
        /// Lock sections per logical operation.
        sections: usize,
    },
    /// Condvar ping-pong: half the threads signal, half wait.
    CondvarPingPong,
}

impl WorkloadSpec {
    /// Whether the scenario's thread count can be varied by a sweep
    /// (the [`WorkloadSpec::System`] models fix their own, per Table 3).
    pub fn supports_thread_override(&self) -> bool {
        !matches!(self, WorkloadSpec::System(_))
    }

    /// The smallest thread count the workload is defined for (the
    /// two-role workloads need a member of each role to stay live).
    pub fn min_threads(&self) -> usize {
        match self {
            WorkloadSpec::Pipeline | WorkloadSpec::CondvarPingPong => 2,
            _ => 1,
        }
    }

    /// A short stable label for reports.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::System(sys) => {
                format!("{}/{}", sys.system_name(), sys.config_label())
            }
            WorkloadSpec::CowList => "cow-list".into(),
            WorkloadSpec::LockStress { n_locks, .. } => format!("lock-stress/{n_locks}"),
            WorkloadSpec::ZipfKv { buckets, skew_milli, .. } => {
                format!("zipf-kv/{buckets}b/s{skew_milli}")
            }
            WorkloadSpec::Kv(mix) => mix.label(),
            WorkloadSpec::Pipeline => "pipeline".into(),
            WorkloadSpec::ReadersWriters { write_pct, .. } => format!("rw-skew/{write_pct}w"),
            WorkloadSpec::OversubStorm { sections } => format!("oversub-storm/{sections}"),
            WorkloadSpec::CondvarPingPong => "condvar-pingpong".into(),
        }
    }

    /// The workload's shard/bucket count, for workloads that have one
    /// (the KV families) — the third sweep axis.
    pub fn shard_count(&self) -> Option<usize> {
        match self {
            WorkloadSpec::Kv(mix) => Some(mix.shards),
            WorkloadSpec::ZipfKv { buckets, .. } => Some(*buckets),
            _ => None,
        }
    }

    /// Returns the workload with `shards` shards, or `None` for workloads
    /// without a shard axis.
    pub fn with_shards(&self, shards: usize) -> Option<WorkloadSpec> {
        match *self {
            WorkloadSpec::Kv(mix) => Some(WorkloadSpec::Kv(mix.with_shards(shards))),
            WorkloadSpec::ZipfKv { skew_milli, write_pct, .. } => {
                Some(WorkloadSpec::ZipfKv { buckets: shards.max(1), skew_milli, write_pct })
            }
            _ => None,
        }
    }
}

/// A complete, declarative description of one experiment cell.
///
/// Everything the run depends on is captured here, so equal specs produce
/// byte-identical [`crate::CellReport`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (registry key; carried into reports).
    pub name: String,
    /// Simulated machine.
    pub machine: MachineKind,
    /// What the threads do.
    pub workload: WorkloadSpec,
    /// Lock algorithm under test.
    pub lock: LockKind,
    /// Requested worker threads (ignored by workloads that fix their own;
    /// see [`ScenarioSpec::effective_threads`]).
    pub threads: usize,
    /// Simulated cycles, including warmup.
    pub duration: Cycles,
    /// Warmup prefix excluded from measurement.
    pub warmup: Cycles,
    /// Deterministic seed for every random stream of the run.
    pub seed: u64,
    /// Frequency cap in kHz (the `--freq` sweep axis): the simulated
    /// machine starts every core at this VF point, clamped into the
    /// machine's DVFS range — the simulated equivalent of a
    /// `scaling_max_freq` write before the run. `None` = base frequency.
    pub freq_khz: Option<u64>,
}

impl ScenarioSpec {
    /// Creates a spec with defaults (Xeon, MUTEX, 8 threads, 20 M cycles
    /// with 10% warmup, seed `0xC0FF_EE00`).
    pub fn new(name: impl Into<String>, workload: WorkloadSpec) -> Self {
        Self {
            name: name.into(),
            machine: MachineKind::Xeon,
            workload,
            lock: LockKind::Mutex,
            threads: 8,
            duration: 20_000_000,
            warmup: 2_000_000,
            seed: 0xC0FF_EE00,
            freq_khz: None,
        }
    }

    /// Returns the spec with a different machine.
    #[must_use]
    pub fn with_machine(mut self, machine: MachineKind) -> Self {
        self.machine = machine;
        self
    }

    /// Returns the spec with a different lock algorithm.
    #[must_use]
    pub fn with_lock(mut self, lock: LockKind) -> Self {
        self.lock = lock;
        self
    }

    /// Returns the spec with a different thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the spec with a different horizon.
    #[must_use]
    pub fn with_duration(mut self, duration: Cycles, warmup: Cycles) -> Self {
        self.duration = duration;
        self.warmup = warmup;
        self
    }

    /// Returns the spec with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec with a different frequency cap (`None` = base).
    #[must_use]
    pub fn with_freq(mut self, freq_khz: Option<u64>) -> Self {
        self.freq_khz = freq_khz;
        self
    }

    /// Returns the spec with a different shard count, or `None` if the
    /// workload has no shard axis (see [`WorkloadSpec::with_shards`]).
    pub fn with_shards(mut self, shards: usize) -> Option<Self> {
        self.workload = self.workload.with_shards(shards)?;
        Some(self)
    }

    /// The thread count the run will actually use (and that reports
    /// carry): the requested count, floored by the workload's minimum.
    pub fn effective_threads(&self) -> usize {
        match &self.workload {
            WorkloadSpec::System(sys) => sys.threads(),
            w => self.threads.max(w.min_threads()),
        }
    }

    /// Builds the workload into an existing builder (threads, locks,
    /// condvars). Most callers want [`ScenarioSpec::run`].
    pub fn build_into(&self, b: &mut SimBuilder) {
        let threads = self.effective_threads();
        match self.workload {
            WorkloadSpec::System(sys) => sys.build(b, self.lock),
            WorkloadSpec::CowList => poly_systems::build_cowlist(b, self.lock, threads),
            WorkloadSpec::LockStress { cs, non_cs, n_locks } => {
                synth::build_lock_stress(b, self.lock, threads, cs, non_cs, n_locks)
            }
            WorkloadSpec::ZipfKv { buckets, skew_milli, write_pct } => {
                synth::build_zipf_kv(b, self.lock, threads, buckets, skew_milli, write_pct)
            }
            WorkloadSpec::Kv(mix) => synth::build_kv(b, self.lock, threads, mix),
            WorkloadSpec::Pipeline => synth::build_pipeline(b, self.lock, threads),
            WorkloadSpec::ReadersWriters { write_pct, read_cs, write_cs } => {
                synth::build_readers_writers(b, self.lock, threads, write_pct, read_cs, write_cs)
            }
            WorkloadSpec::OversubStorm { sections } => {
                synth::build_oversub_storm(b, self.lock, threads, sections)
            }
            WorkloadSpec::CondvarPingPong => synth::build_condvar_pingpong(b, self.lock, threads),
        }
    }

    /// Runs the scenario to completion.
    ///
    /// # Panics
    ///
    /// Panics on invalid horizons (`warmup >= duration`) and propagates the
    /// engine's mutual-exclusion assertions.
    pub fn run(&self) -> SimReport {
        assert!(self.warmup < self.duration, "warmup must be shorter than the duration");
        let mut b = SimBuilder::new(self.machine.config());
        b.config_mut().cap_khz = self.freq_khz;
        b.seed(self.seed);
        self.build_into(&mut b);
        b.run(RunSpec { duration: self.duration, warmup: self.warmup })
    }

    /// Serializes the spec as one JSON object (hand-rolled: the build has
    /// no serde available, but the shape is serde-derive compatible).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"machine\":\"{}\",\"workload\":{},\"lock\":\"{}\",\
             \"threads\":{},\"duration\":{},\"warmup\":{},\"seed\":{},\"freq_khz\":{}}}",
            json_str(&self.name),
            self.machine.label(),
            json_str(&self.workload.label()),
            self.lock.label(),
            self.effective_threads(),
            self.duration,
            self.warmup,
            self.seed,
            self.freq_khz.map_or_else(|| "null".into(), |k| k.to_string()),
        )
    }
}

/// Quotes and escapes a JSON string.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_labels_round_trip() {
        for kind in LockKind::ALL {
            assert_eq!(parse_lock(kind.label()), Some(kind));
            assert_eq!(parse_lock(&kind.label().to_lowercase()), Some(kind));
        }
        assert_eq!(parse_lock("nope"), None);
    }

    #[test]
    fn machine_labels_round_trip() {
        for m in [MachineKind::Xeon, MachineKind::CoreI7, MachineKind::Tiny] {
            assert_eq!(MachineKind::parse(m.label()), Some(m));
        }
        assert_eq!(MachineKind::parse(""), None);
    }

    #[test]
    fn system_workloads_pin_their_thread_count() {
        let spec =
            ScenarioSpec::new("s", WorkloadSpec::System(PaperSystem::Sqlite(64))).with_threads(4);
        assert_eq!(spec.effective_threads(), 64);
        assert!(!spec.workload.supports_thread_override());
        let spec = ScenarioSpec::new("c", WorkloadSpec::CowList).with_threads(4);
        assert_eq!(spec.effective_threads(), 4);
    }

    #[test]
    fn spec_json_is_one_object() {
        let spec = ScenarioSpec::new("x\"y", WorkloadSpec::Pipeline);
        let j = spec.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\\\""), "quotes must be escaped: {j}");
        assert!(j.contains("\"lock\":\"MUTEX\""));
    }
}
