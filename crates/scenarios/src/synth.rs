//! Builders for the synthetic scenarios.
//!
//! These reuse the action-script interpreter of [`poly_systems`]
//! ([`SysThread`] running [`Action`] scripts), so synthetic scenarios get
//! the same uniform measurement bookkeeping as the paper's system models.

use poly_locks_sim::{
    Dist, LockKind, LockParams, LockStress, LockStressConfig, RwMode, SimCondvar, SimLock,
    SimRwLock,
};
use poly_sim::{Cycles, PinPolicy, SimBuilder};
use poly_store::{KeyDist, KvMix};
use poly_systems::{pct, Action, SysShared, SysThread, Zipf};
use rand::Rng;

/// The §5.2 microbenchmark: `n_locks` locks picked uniformly per iteration.
pub(crate) fn build_lock_stress(
    b: &mut SimBuilder,
    lock: LockKind,
    threads: usize,
    cs: Dist,
    non_cs: Dist,
    n_locks: usize,
) {
    let locks: Vec<SimLock> = (0..n_locks.max(1))
        .map(|_| SimLock::alloc(b, lock, threads, LockParams::default()))
        .collect();
    for _ in 0..threads {
        b.spawn(
            Box::new(LockStress::new(locks.clone(), LockStressConfig { cs, non_cs })),
            PinPolicy::PaperOrder,
        );
    }
}

/// A sharded KV store: bucket locks with Zipf-skewed popularity. High skew
/// concentrates traffic on a couple of hot locks (contention-bound); zero
/// skew spreads it out (parallelism-bound).
pub(crate) fn build_zipf_kv(
    b: &mut SimBuilder,
    lock: LockKind,
    threads: usize,
    buckets: usize,
    skew_milli: u32,
    write_pct: u32,
) {
    let buckets = buckets.max(1);
    let locks: Vec<SimLock> =
        (0..buckets).map(|_| SimLock::alloc(b, lock, threads, LockParams::default())).collect();
    let zipf = Zipf::new(buckets, f64::from(skew_milli) / 1000.0);
    for _ in 0..threads {
        let shared = SysShared { locks: locks.clone(), ..Default::default() };
        let zipf = zipf.clone();
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            let bucket = zipf.sample(rng);
            let cs = if pct(rng, write_pct) { Dist::Exp(1_500) } else { Dist::Exp(700) };
            vec![
                Action::Work(Dist::Exp(1_200)), // parse + hash
                Action::Lock(bucket),
                Action::Work(cs),
                Action::Unlock(bucket),
                Action::Work(Dist::Exp(900)), // respond
            ]
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}

/// The `kv` scenario family on the simulated machine: `mix.shards` shard
/// locks driven by the same op mix that `poly-store`'s native driver
/// runs.
///
/// Approximations relative to the native store: key-level popularity is
/// collapsed to shard-level popularity (a Zipf draw over shards with the
/// mix's skew — hashing concentrates the hot keys' mass onto their
/// shards), batched writes buffer without locking and flush one shard
/// with a batch-proportional critical section, and scans visit every
/// shard lock in order with a per-shard section sized to the resident
/// keys.
pub(crate) fn build_kv(b: &mut SimBuilder, lock: LockKind, threads: usize, mix: KvMix) {
    let shards = mix.shards.max(1);
    let locks: Vec<SimLock> =
        (0..shards).map(|_| SimLock::alloc(b, lock, threads, LockParams::default())).collect();
    let skew = match mix.dist {
        KeyDist::Uniform => 0.0,
        KeyDist::Zipf { skew_milli } => f64::from(skew_milli) / 1000.0,
    };
    let zipf = Zipf::new(shards, skew);
    // Per-entry scan cost: hash-map iteration touches each entry once.
    let scan_cs_per_shard: Cycles = 50 * (mix.keys / shards as u64).max(1);
    // Value copy cost: moving the item's bytes through the slab, ~50
    // cycles per cache line. Zero for the legacy 8-byte values (they ride
    // in a register), which keeps every pre-cache family's simulation
    // byte-identical — the action script only grows when the mix actually
    // carries byte values.
    let copy_cycles: Cycles = 50 * u64::from(mix.value.mean_bytes() / 64);
    for _ in 0..threads {
        let shared = SysShared { locks: locks.clone(), ..Default::default() };
        let zipf = zipf.clone();
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            let roll = rng.random_range(0..100u32);
            if roll >= 100 - mix.scan_pct {
                // Full scan: every shard lock in order.
                let mut script = vec![Action::Work(Dist::Exp(1_000))];
                for s in 0..shards {
                    script.extend([
                        Action::Lock(s),
                        Action::Work(Dist::Exp(scan_cs_per_shard)),
                        Action::Unlock(s),
                    ]);
                }
                return script;
            }
            let shard = zipf.sample(rng);
            let write = roll >= mix.get_pct;
            if write && mix.batch > 1 && rng.random_range(0..mix.batch) != 0 {
                // Buffered batch write (probability (batch-1)/batch,
                // exactly — a percentage would round to 0 for batch > 100
                // and never flush): no lock this round.
                return vec![Action::Work(Dist::Exp(1_000))];
            }
            let cs = if write {
                let flush_scale = if mix.batch > 1 { mix.batch as u64 } else { 1 };
                Dist::Exp(1_500 * flush_scale)
            } else {
                Dist::Exp(700)
            };
            let mut script = vec![
                Action::Work(Dist::Exp(1_200)), // parse + hash
                Action::Lock(shard),
                Action::Work(cs),
            ];
            if copy_cycles > 0 {
                // Copy the value bytes while the shard is held (a put
                // moves them into the slab, a get copies them out).
                script.push(Action::Work(Dist::Fixed(copy_cycles)));
            }
            script.extend([
                Action::Unlock(shard),
                Action::Work(Dist::Exp(900)), // respond
            ]);
            script
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}

/// Producer-consumer pipeline over one mutex-guarded queue with a condvar.
///
/// The first half of the threads produce and *never* block on the condvar,
/// so the scenario cannot deadlock: some producer is always runnable and
/// every completed item signals a sleeping consumer.
pub(crate) fn build_pipeline(b: &mut SimBuilder, lock: LockKind, threads: usize) {
    assert!(threads >= 2, "pipeline needs a producer and a consumer");
    let queue = SimLock::alloc(b, lock, threads, LockParams::default());
    let cv = SimCondvar::alloc(b);
    let producers = (threads / 2).max(1);
    for i in 0..threads {
        let shared =
            SysShared { locks: vec![queue.clone()], conds: vec![cv], ..Default::default() };
        let producer = i < producers;
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            if producer {
                vec![
                    Action::Work(Dist::Exp(2_500)), // produce an item
                    Action::Lock(0),
                    Action::Work(Dist::Exp(600)), // enqueue
                    Action::Unlock(0),
                    Action::CondSignal(0),
                ]
            } else {
                let mut script = vec![Action::Lock(0)];
                // An empty queue is modeled probabilistically: the script
                // interpreter cannot branch on shared state.
                if pct(rng, 25) {
                    script.push(Action::CondWait(0, 0));
                }
                script.extend([
                    Action::Work(Dist::Exp(500)), // dequeue
                    Action::Unlock(0),
                    Action::Work(Dist::Exp(2_000)), // process downstream
                ]);
                script
            }
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}

/// Readers-writers skew over one process-wide rwlock (the Kyoto Cabinet
/// topology, with the mix and section lengths as knobs).
pub(crate) fn build_readers_writers(
    b: &mut SimBuilder,
    lock: LockKind,
    threads: usize,
    write_pct: u32,
    read_cs: Cycles,
    write_cs: Cycles,
) {
    let rw = SimRwLock::alloc(b, lock, threads, LockParams::default());
    for _ in 0..threads {
        let shared = SysShared { rwlocks: vec![rw.clone()], ..Default::default() };
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            let (mode, cs) = if pct(rng, write_pct) {
                (RwMode::Write, Dist::Exp(write_cs))
            } else {
                (RwMode::Read, Dist::Exp(read_cs))
            };
            vec![
                Action::Work(Dist::Exp(1_000)),
                Action::RwAcquire(0, mode),
                Action::Work(cs),
                Action::RwRelease(0, mode),
            ]
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}

/// Oversubscription storm: unpinned threads (typically several per hardware
/// context) each taking `sections` short critical sections per operation
/// over four hot locks — the regime where spinning collapses and fair
/// locks suffer lock-holder preemption (§6, MySQL/SQLite).
pub(crate) fn build_oversub_storm(
    b: &mut SimBuilder,
    lock: LockKind,
    threads: usize,
    sections: usize,
) {
    const HOT_LOCKS: usize = 4;
    let locks: Vec<SimLock> =
        (0..HOT_LOCKS).map(|_| SimLock::alloc(b, lock, threads, LockParams::default())).collect();
    let sections = sections.max(1);
    for _ in 0..threads {
        let shared = SysShared { locks: locks.clone(), ..Default::default() };
        let gen = Box::new(move |rng: &mut rand::rngs::SmallRng| {
            let mut script = vec![Action::Work(Dist::Exp(2_000))];
            for _ in 0..sections {
                let l = rng.random_range(0..HOT_LOCKS);
                script.extend([
                    Action::Lock(l),
                    Action::Work(Dist::Exp(800)),
                    Action::Unlock(l),
                    Action::Work(Dist::Exp(500)),
                ]);
            }
            script
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::Unpinned);
    }
}

/// Condvar ping-pong: even threads signal on every operation (and never
/// wait, guaranteeing liveness); odd threads sleep on the condvar and are
/// handed the lock on wake — a pure wake-up-latency stress (§4.3).
pub(crate) fn build_condvar_pingpong(b: &mut SimBuilder, lock: LockKind, threads: usize) {
    assert!(threads >= 2, "ping-pong needs a pinger and a ponger");
    let mutex = SimLock::alloc(b, lock, threads, LockParams::default());
    let cv = SimCondvar::alloc(b);
    for i in 0..threads {
        let shared =
            SysShared { locks: vec![mutex.clone()], conds: vec![cv], ..Default::default() };
        let pinger = i % 2 == 0;
        let gen = Box::new(move |_rng: &mut rand::rngs::SmallRng| {
            if pinger {
                vec![
                    Action::Work(Dist::Exp(800)),
                    Action::Lock(0),
                    Action::Work(Dist::Fixed(200)),
                    Action::Unlock(0),
                    Action::CondSignal(0),
                ]
            } else {
                vec![
                    Action::Lock(0),
                    Action::CondWait(0, 0),
                    Action::Work(Dist::Fixed(200)),
                    Action::Unlock(0),
                    Action::Work(Dist::Exp(800)),
                ]
            }
        });
        b.spawn(Box::new(SysThread::new(shared, gen)), PinPolicy::PaperOrder);
    }
}
