//! Cross-product sweeps, the parallel runner, and report sinks.

use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use poly_locks_sim::LockKind;
use poly_report::columns::SCENARIO_CELL;
use poly_report::Value;
use poly_sim::SimReport;
use poly_store::EnergySource;

use crate::spec::ScenarioSpec;

/// Expands base scenarios into the cross product with `locks` and
/// `thread_counts`, deriving a deterministic seed for every cell.
///
/// Empty `locks`/`thread_counts` mean "keep the base spec's value".
/// Workloads that fix their own thread count (the system models) get one
/// cell per lock instead of one per `(lock, threads)` pair.
pub fn cross(
    bases: &[ScenarioSpec],
    locks: &[LockKind],
    thread_counts: &[usize],
    base_seed: u64,
) -> Vec<ScenarioSpec> {
    cross_shards(bases, locks, thread_counts, &[], base_seed)
}

/// [`cross`] with a fourth axis: shard counts, applied to workloads that
/// have a shard knob (the KV families; see
/// [`WorkloadSpec::with_shards`](crate::WorkloadSpec::with_shards)).
/// Workloads without one contribute a single sub-spec, unexpanded.
///
/// Cells that differ only in shard count (or lock) share a seed — common
/// random numbers, so shard-count comparisons divide measurements of the
/// same arrival stream.
pub fn cross_shards(
    bases: &[ScenarioSpec],
    locks: &[LockKind],
    thread_counts: &[usize],
    shard_counts: &[usize],
    base_seed: u64,
) -> Vec<ScenarioSpec> {
    let expanded: Vec<ScenarioSpec> = bases
        .iter()
        .flat_map(|base| {
            let sharded: Vec<ScenarioSpec> = if shard_counts.is_empty() {
                vec![base.clone()]
            } else {
                let subs: Vec<ScenarioSpec> =
                    shard_counts.iter().filter_map(|&s| base.clone().with_shards(s)).collect();
                if subs.is_empty() {
                    vec![base.clone()] // no shard axis on this workload
                } else {
                    subs
                }
            };
            sharded
        })
        .collect();
    cross_inner(&expanded, locks, thread_counts, base_seed)
}

/// [`cross_shards`] with a fifth axis: frequency caps, applied to every
/// workload (`None` points mean base frequency — see
/// [`ScenarioSpec::with_freq`](crate::ScenarioSpec::with_freq)). An empty
/// `freq_points` behaves exactly like [`cross_shards`].
///
/// Like the lock and shard axes, frequency is *excluded* from the cell
/// seed: cells that differ only in cap replay the same workload stream,
/// so frequency comparisons divide measurements of identical runs
/// (common random numbers — the paper's frequency figures normalize
/// against the base P-state).
pub fn cross_capped(
    bases: &[ScenarioSpec],
    locks: &[LockKind],
    thread_counts: &[usize],
    shard_counts: &[usize],
    freq_points: &[Option<u64>],
    base_seed: u64,
) -> Vec<ScenarioSpec> {
    let cells = cross_shards(bases, locks, thread_counts, shard_counts, base_seed);
    if freq_points.is_empty() {
        return cells;
    }
    cells
        .into_iter()
        .flat_map(|cell| {
            freq_points.iter().map(move |&point| cell.clone().with_freq(point)).collect::<Vec<_>>()
        })
        .collect()
}

fn cross_inner(
    bases: &[ScenarioSpec],
    locks: &[LockKind],
    thread_counts: &[usize],
    base_seed: u64,
) -> Vec<ScenarioSpec> {
    let mut cells = Vec::new();
    for base in bases {
        let lock_list: Vec<LockKind> =
            if locks.is_empty() { vec![base.lock] } else { locks.to_vec() };
        let thread_list: Vec<usize> = if !base.workload.supports_thread_override() {
            vec![base.effective_threads()]
        } else if thread_counts.is_empty() {
            vec![base.threads]
        } else {
            thread_counts.to_vec()
        };
        for &lock in &lock_list {
            for &threads in &thread_list {
                let seed = cell_seed(base_seed, &base.name, threads);
                cells.push(base.clone().with_lock(lock).with_threads(threads).with_seed(seed));
            }
        }
    }
    cells
}

/// Derives a cell's seed from the sweep seed and the cell's workload
/// identity (not its position, so adding cells does not reshuffle
/// existing ones).
///
/// The lock algorithm is deliberately *excluded*: cells that differ only
/// in lock share a seed, so the random workload stream is identical
/// across the locks being compared (common random numbers — the figures
/// normalize each lock against MUTEX and must not divide measurements
/// from different streams).
fn cell_seed(base_seed: u64, name: &str, threads: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Frame each field: 0xFF never occurs in UTF-8, so "ab" + "c"
        // cannot collide with "a" + "bc".
        h = (h ^ 0xFF).wrapping_mul(0x0000_0100_0000_01B3);
    };
    eat(name.as_bytes());
    eat(&(threads as u64).to_le_bytes());
    eat(&base_seed.to_le_bytes());
    // Finalize so low-entropy inputs still flip high bits.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h
}

/// The measured outcome of one sweep cell.
///
/// Plain data with stable formatting: two runs of the same
/// [`ScenarioSpec`] serialize byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Scenario name.
    pub scenario: String,
    /// Workload label (carries the shard count for KV workloads, so
    /// shard-sweep cells stay distinguishable).
    pub workload: String,
    /// Machine label.
    pub machine: &'static str,
    /// Transport the cell ran over: `"sim"` for the simulated Xeon (this
    /// runner); the native `store` CLI emits `"local"` (in-process) and
    /// `"tcp"` (through `poly-net`) in the same position.
    pub transport: &'static str,
    /// Lock algorithm.
    pub lock: LockKind,
    /// Effective thread count.
    pub threads: usize,
    /// The cell's seed.
    pub seed: u64,
    /// Measured interval in cycles (excludes warmup).
    pub measured_cycles: u64,
    /// Completed operations.
    pub total_ops: u64,
    /// Operations per second.
    pub throughput: f64,
    /// Average power in watts.
    pub avg_power_w: f64,
    /// Energy over the measured interval in joules.
    pub energy_j: f64,
    /// Operations per joule (the paper's TPP).
    pub tpp: f64,
    /// Energy per operation in microjoules.
    pub epo_uj: f64,
    /// Measured (RAPL) joules over the measured interval: always `None`
    /// for simulated cells; the native `store` CLI fills it when the host
    /// is metered, in the same schema position.
    pub measured_j: Option<f64>,
    /// Measured microjoules per operation (`None` like `measured_j`).
    pub measured_uj_per_op: Option<f64>,
    /// Measured package-domain joules — the per-domain split of
    /// `measured_j` (`None` like it).
    pub measured_pkg_j: Option<f64>,
    /// Measured DRAM-domain joules (`None` like `measured_j`).
    pub measured_dram_j: Option<f64>,
    /// Where the cell's joules come from: `"modeled"` for every simulated
    /// cell (the Xeon power model), `"rapl"` when the native CLI measured.
    pub energy_source: EnergySource,
    /// The cell's frequency cap in kHz (`None` = base frequency).
    pub freq_khz: Option<u64>,
    /// Whether the cap was actually in force: always true for a capped
    /// simulated cell (the simulator applies it exactly); the native CLI
    /// reports `false` when the host's cpufreq refused the write (the
    /// cell then ran — and was modeled — at base, never silently
    /// pretending).
    pub freq_applied: bool,
    /// Median lock-acquisition latency in cycles.
    pub p50_acq_cycles: u64,
    /// 99th-percentile lock-acquisition latency in cycles.
    pub p99_acq_cycles: u64,
    /// Maximum lock-acquisition latency in cycles.
    pub max_acq_cycles: u64,
}

impl CellReport {
    /// Distills a simulation report into a cell report.
    pub fn from_sim(spec: &ScenarioSpec, r: &SimReport) -> Self {
        // `SimReport::cap_khz` is the engine's *effective* cap (the
        // request clamped into the machine's DVFS range), so the report
        // names the frequency the cell actually ran at — the native
        // `store` CLI likewise reports the clamped applied cap, and
        // calibrate keys residual rows by real operating points.
        let freq_khz = r.cap_khz;
        Self {
            scenario: spec.name.clone(),
            workload: spec.workload.label(),
            machine: spec.machine.label(),
            transport: "sim",
            lock: spec.lock,
            threads: spec.effective_threads(),
            seed: spec.seed,
            measured_cycles: r.cycles,
            total_ops: r.total_ops,
            throughput: r.throughput,
            avg_power_w: r.avg_power.total_w,
            energy_j: r.energy.total_j(),
            tpp: r.tpp,
            epo_uj: r.epo() * 1e6,
            measured_j: None,
            measured_uj_per_op: None,
            measured_pkg_j: None,
            measured_dram_j: None,
            energy_source: EnergySource::Modeled,
            freq_khz,
            freq_applied: freq_khz.is_some(),
            p50_acq_cycles: r.acquire_latency.percentile(50.0),
            p99_acq_cycles: r.acquire_latency.percentile(99.0),
            max_acq_cycles: r.acquire_latency.max(),
        }
    }

    /// The report as one row of the canonical `SCENARIO_CELL` schema —
    /// both sinks render from the same value list, so JSONL and CSV can
    /// never disagree on columns.
    fn render(&self, csv: bool) -> String {
        let row = [
            Value::Str(&self.scenario),
            Value::Str(&self.workload),
            Value::Str(self.machine),
            Value::Str(self.transport),
            Value::Str(self.lock.label()),
            Value::U64(self.threads as u64),
            Value::U64(self.seed),
            Value::U64(self.measured_cycles),
            Value::U64(self.total_ops),
            Value::F64(self.throughput),
            Value::F64(self.avg_power_w),
            Value::F64(self.energy_j),
            Value::F64(self.tpp),
            Value::F64(self.epo_uj),
            Value::OptF64(self.measured_j),
            Value::OptF64(self.measured_uj_per_op),
            Value::OptF64(self.measured_pkg_j),
            Value::OptF64(self.measured_dram_j),
            Value::Str(self.energy_source.label()),
            Value::OptU64(self.freq_khz),
            Value::Bool(self.freq_applied),
            Value::U64(self.p50_acq_cycles),
            Value::U64(self.p99_acq_cycles),
            Value::U64(self.max_acq_cycles),
        ];
        if csv {
            SCENARIO_CELL.row_csv(&row)
        } else {
            SCENARIO_CELL.row_json(&row)
        }
    }

    /// Serializes the report as one JSON object (one JSON-lines record).
    pub fn to_json(&self) -> String {
        self.render(false)
    }

    /// The CSV column header matching [`CellReport::to_csv`] (frozen —
    /// pinned against `SCENARIO_CELL` by the schema-drift tests).
    pub const CSV_HEADER: &'static str = "scenario,workload,machine,transport,lock,threads,seed,\
        measured_cycles,total_ops,throughput,avg_power_w,energy_j,tpp,epo_uj,measured_j,\
        measured_uj_per_op,measured_pkg_j,measured_dram_j,energy_source,freq_khz,freq_applied,\
        p50_acq_cycles,p99_acq_cycles,max_acq_cycles";

    /// Serializes the report as one CSV row.
    pub fn to_csv(&self) -> String {
        self.render(true)
    }
}

/// Report sink formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFormat {
    /// One JSON object per line.
    JsonLines,
    /// Comma-separated values with a header row.
    Csv,
}

impl SinkFormat {
    /// Parses `jsonl`/`json`/`csv` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "jsonl" | "json" | "json-lines" => Some(SinkFormat::JsonLines),
            "csv" => Some(SinkFormat::Csv),
            _ => None,
        }
    }
}

/// Writes reports to a sink in the given format.
pub fn write_reports<W: Write>(
    w: &mut W,
    format: SinkFormat,
    reports: &[CellReport],
) -> io::Result<()> {
    match format {
        SinkFormat::JsonLines => {
            for r in reports {
                writeln!(w, "{}", r.to_json())?;
            }
        }
        SinkFormat::Csv => {
            writeln!(w, "{}", CellReport::CSV_HEADER)?;
            for r in reports {
                writeln!(w, "{}", r.to_csv())?;
            }
        }
    }
    Ok(())
}

/// Fans sweep cells out over OS threads.
///
/// Each cell is an independent, fully deterministic simulation, so the
/// runner parallelizes freely: results are returned in input order and are
/// identical to a sequential run regardless of worker count.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    workers: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using every available hardware thread.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { workers }
    }

    /// A runner with an explicit worker count (1 = sequential).
    pub fn with_workers(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }

    /// Runs every cell, returning reports in input order.
    ///
    /// # Panics
    ///
    /// Propagates panics from scenario runs (e.g. the engine's
    /// mutual-exclusion assertions) after all workers stop.
    pub fn run(&self, cells: &[ScenarioSpec]) -> Vec<CellReport> {
        if cells.is_empty() {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<CellReport>>> = Mutex::new(vec![None; cells.len()]);
        let workers = self.workers.min(cells.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = cells.get(idx) else { return };
                        let report = CellReport::from_sim(spec, &spec.run());
                        results.lock().unwrap()[idx] = Some(report);
                    })
                })
                .collect();
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        results.into_inner().unwrap().into_iter().map(|r| r.expect("every cell ran")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MachineKind, WorkloadSpec};
    use poly_locks_sim::Dist;

    fn tiny_stress(name: &str) -> ScenarioSpec {
        ScenarioSpec::new(
            name,
            WorkloadSpec::LockStress { cs: Dist::Fixed(500), non_cs: Dist::Fixed(100), n_locks: 1 },
        )
        .with_machine(MachineKind::Tiny)
        .with_threads(2)
        .with_duration(1_500_000, 150_000)
    }

    #[test]
    fn cross_product_shape_and_seeds() {
        let cells = cross(&[tiny_stress("a")], &[LockKind::Ttas, LockKind::Mutex], &[2, 4], 99);
        assert_eq!(cells.len(), 4);
        // Common random numbers: cells differing only in lock share a
        // seed (paired comparisons), distinct workloads get distinct ones.
        let seed_of = |lock, threads| {
            cells.iter().find(|c| c.lock == lock && c.threads == threads).unwrap().seed
        };
        assert_eq!(seed_of(LockKind::Ttas, 2), seed_of(LockKind::Mutex, 2));
        assert_eq!(seed_of(LockKind::Ttas, 4), seed_of(LockKind::Mutex, 4));
        assert_ne!(seed_of(LockKind::Ttas, 2), seed_of(LockKind::Ttas, 4));
        assert_ne!(
            cross(&[tiny_stress("b")], &[LockKind::Ttas], &[2], 99)[0].seed,
            seed_of(LockKind::Ttas, 2),
            "different scenario names must draw different streams"
        );
        // Field framing: ("ab", …) and ("a", …) cannot collide even when
        // the following field's bytes line up.
        assert_ne!(cell_seed(99, "ab", 2), cell_seed(99, "a", 2));
        // Identity-derived: same cell, same seed, regardless of siblings.
        let solo = cross(&[tiny_stress("a")], &[LockKind::Mutex], &[4], 99);
        assert_eq!(solo[0].seed, seed_of(LockKind::Mutex, 4));
        // Different sweep seed reshuffles.
        let other = cross(&[tiny_stress("a")], &[LockKind::Mutex], &[4], 100);
        assert_ne!(other[0].seed, solo[0].seed);
    }

    #[test]
    fn shard_axis_expands_kv_workloads_only() {
        use crate::spec::WorkloadSpec;
        use poly_store::KvMix;
        let kv = ScenarioSpec::new("kv", WorkloadSpec::Kv(KvMix::uniform()))
            .with_machine(MachineKind::Tiny)
            .with_duration(1_000_000, 100_000);
        let plain = tiny_stress("plain");
        let cells = cross_shards(
            &[kv.clone(), plain],
            &[LockKind::Mutex, LockKind::Mutexee],
            &[2, 4],
            &[8, 32],
            5,
        );
        // kv: 2 shards x 2 locks x 2 threads = 8; plain: 2 locks x 2 threads.
        assert_eq!(cells.len(), 12);
        let kv_shards: Vec<usize> = cells
            .iter()
            .filter(|c| c.name == "kv")
            .filter_map(|c| c.workload.shard_count())
            .collect();
        assert_eq!(kv_shards.iter().filter(|&&s| s == 8).count(), 4);
        assert_eq!(kv_shards.iter().filter(|&&s| s == 32).count(), 4);
        // Common random numbers across the shard axis too.
        let seeds: Vec<u64> =
            cells.iter().filter(|c| c.name == "kv" && c.threads == 2).map(|c| c.seed).collect();
        assert!(seeds.windows(2).all(|w| w[0] == w[1]), "shard cells drew new seeds: {seeds:?}");
        // Empty shard axis behaves exactly like cross().
        let a = cross_shards(std::slice::from_ref(&kv), &[LockKind::Mutex], &[2], &[], 5);
        let b = cross(&[kv], &[LockKind::Mutex], &[2], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn freq_axis_expands_every_cell_and_shares_seeds() {
        let cells = cross_capped(
            &[tiny_stress("a")],
            &[LockKind::Ttas, LockKind::Mutex],
            &[2],
            &[],
            &[None, Some(1_200_000)],
            99,
        );
        assert_eq!(cells.len(), 4);
        let freqs: Vec<Option<u64>> = cells.iter().map(|c| c.freq_khz).collect();
        assert_eq!(freqs, [None, Some(1_200_000), None, Some(1_200_000)]);
        // Common random numbers across the frequency axis: capped and
        // base cells replay the same stream.
        assert_eq!(cells[0].seed, cells[1].seed);
        // An empty frequency axis is exactly cross_shards.
        let a = cross_capped(&[tiny_stress("a")], &[LockKind::Ttas], &[2], &[], &[], 99);
        let b = cross_shards(&[tiny_stress("a")], &[LockKind::Ttas], &[2], &[], 99);
        assert_eq!(a, b);
        assert_eq!(a[0].freq_khz, None);
    }

    #[test]
    fn capped_cells_report_their_frequency_and_lower_power() {
        let base = tiny_stress("cap");
        let cells =
            cross_capped(&[base], &[LockKind::Ttas], &[2], &[], &[None, Some(1_200_000)], 5);
        let reports = SweepRunner::with_workers(1).run(&cells);
        assert_eq!(reports.len(), 2);
        let (uncapped, capped) = (&reports[0], &reports[1]);
        assert_eq!(uncapped.freq_khz, None);
        assert!(!uncapped.freq_applied);
        assert_eq!(capped.freq_khz, Some(1_200_000));
        assert!(capped.freq_applied, "the simulator always applies a requested cap");
        assert!(
            capped.avg_power_w < uncapped.avg_power_w,
            "DVFS must lower modeled power: {} vs {}",
            capped.avg_power_w,
            uncapped.avg_power_w
        );
        assert!(
            capped.total_ops < uncapped.total_ops,
            "a capped core retires less work per wall-clock"
        );
        let json = capped.to_json();
        assert!(json.contains("\"freq_khz\":1200000,\"freq_applied\":true"), "{json}");
        let json = uncapped.to_json();
        assert!(json.contains("\"freq_khz\":null,\"freq_applied\":false"), "{json}");
    }

    #[test]
    fn reported_frequency_is_the_clamped_effective_cap() {
        // The engine clamps a below-range cap to the DVFS floor; the
        // report must carry that effective frequency (what the cell ran
        // at), not the raw request — same contract as the native CLI.
        let cells = cross_capped(&[tiny_stress("clamp")], &[], &[], &[], &[Some(500)], 5);
        let reports = SweepRunner::with_workers(1).run(&cells);
        // Tiny runs the Xeon power calibration: floor 1.2 GHz.
        assert_eq!(reports[0].freq_khz, Some(1_200_000), "unclamped request leaked");
        assert!(reports[0].freq_applied);
    }

    #[test]
    fn runner_order_is_input_order_and_parallelism_invariant() {
        let cells = cross(
            &[tiny_stress("a"), tiny_stress("b")],
            &[LockKind::Ttas, LockKind::Ticket],
            &[2],
            7,
        );
        let seq = SweepRunner::with_workers(1).run(&cells);
        let par = SweepRunner::with_workers(4).run(&cells);
        assert_eq!(seq.len(), 4);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.to_json(), p.to_json(), "parallelism changed a result");
        }
        for (cell, rep) in cells.iter().zip(&seq) {
            assert_eq!(rep.scenario, cell.name);
            assert_eq!(rep.lock, cell.lock);
            assert!(rep.total_ops > 0);
        }
    }

    #[test]
    fn sinks_emit_valid_shapes() {
        let reports = SweepRunner::with_workers(1).run(&[tiny_stress("s")]);
        let mut jsonl = Vec::new();
        write_reports(&mut jsonl, SinkFormat::JsonLines, &reports).unwrap();
        let jsonl = String::from_utf8(jsonl).unwrap();
        assert_eq!(jsonl.lines().count(), 1);
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"throughput\":") && line.contains("\"epo_uj\":"));
        // Simulated cells always carry the measured columns — total and
        // per-domain — empty, with modeled provenance, at base frequency.
        assert!(line.contains("\"measured_j\":null,\"measured_uj_per_op\":null"));
        assert!(line.contains("\"measured_pkg_j\":null,\"measured_dram_j\":null"));
        assert!(line.contains("\"energy_source\":\"modeled\""));
        assert!(line.contains("\"freq_khz\":null,\"freq_applied\":false"));

        let mut csv = Vec::new();
        write_reports(&mut csv, SinkFormat::Csv, &reports).unwrap();
        assert_eq!(
            CellReport::CSV_HEADER,
            SCENARIO_CELL.csv_header(),
            "the frozen header and the registry must agree"
        );
        let csv = String::from_utf8(csv).unwrap();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(header.split(',').count(), row.split(',').count());
    }

    #[test]
    fn csv_escapes_hostile_scenario_names() {
        let mut spec = tiny_stress("kv,\"hot\"");
        spec.threads = 1;
        let reports = SweepRunner::with_workers(1).run(&[spec]);
        let row = reports[0].to_csv();
        assert!(row.starts_with("\"kv,\"\"hot\"\"\","), "unescaped row: {row}");
        assert_eq!(
            row.split(',').count() - 1, // the quoted name embeds one comma
            CellReport::CSV_HEADER.split(',').count(),
            "column count must match the header: {row}"
        );
    }

    #[test]
    fn reported_threads_match_the_built_scenario() {
        // Two-role workloads floor the thread count at 2; the report must
        // carry what actually ran, not the requested value.
        let spec = ScenarioSpec::new("p", WorkloadSpec::Pipeline)
            .with_machine(MachineKind::Tiny)
            .with_threads(1)
            .with_duration(1_000_000, 100_000);
        assert_eq!(spec.effective_threads(), 2);
        let reports = SweepRunner::with_workers(1).run(&[spec]);
        assert_eq!(reports[0].threads, 2);
    }

    #[test]
    fn format_parsers() {
        assert_eq!(SinkFormat::parse("JSONL"), Some(SinkFormat::JsonLines));
        assert_eq!(SinkFormat::parse("csv"), Some(SinkFormat::Csv));
        assert_eq!(SinkFormat::parse("xml"), None);
    }
}
