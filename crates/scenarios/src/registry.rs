//! The named scenario registry.

use poly_locks_sim::{Dist, LockKind};
use poly_store::KvMix;
use poly_systems::{KyotoVariant, MySqlVariant, PaperSystem};

use crate::spec::{ScenarioSpec, WorkloadSpec};

/// One registered scenario: a ready-to-run spec plus a one-line description.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// What the scenario stresses and why it exists.
    pub about: &'static str,
    /// The default spec (callers typically override lock/threads/horizon).
    pub spec: ScenarioSpec,
}

/// A lookup table of named scenarios.
///
/// [`Registry::builtin`] ships the paper's system models plus the synthetic
/// scenarios; sweeps and the `scenarios` CLI resolve names against it.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Vec<RegistryEntry>,
}

impl Registry {
    /// Number of entries [`Registry::builtin`] ships — the single place
    /// the count lives. Adding a scenario means bumping this constant
    /// (builtin() asserts the two agree), and every count check in the
    /// workspace references it instead of hard-coding a number.
    pub const BUILTIN_LEN: usize = 29;

    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in scenarios.
    pub fn builtin() -> Self {
        let mut reg = Self::new();
        let add = |reg: &mut Self, about, spec: ScenarioSpec| reg.register(about, spec);

        // -- Microbenchmarks ------------------------------------------------
        add(
            &mut reg,
            "§5.2 single-lock microbenchmark: 20 threads, 1000-cycle sections",
            ScenarioSpec::new(
                "lock-stress",
                WorkloadSpec::LockStress {
                    cs: Dist::Fixed(1_000),
                    non_cs: Dist::Uniform(0, 200),
                    n_locks: 1,
                },
            )
            .with_lock(LockKind::Ttas)
            .with_threads(20),
        );
        add(
            &mut reg,
            "§5.2 multi-lock variant: 16 locks picked uniformly (low contention)",
            ScenarioSpec::new(
                "lock-stress-16",
                WorkloadSpec::LockStress {
                    cs: Dist::Fixed(1_000),
                    non_cs: Dist::Uniform(0, 200),
                    n_locks: 16,
                },
            )
            .with_lock(LockKind::Ttas)
            .with_threads(20),
        );
        add(
            &mut reg,
            "Figure 1 CopyOnWriteArrayList stress: memory-heavy writes under one lock",
            ScenarioSpec::new("cowlist", WorkloadSpec::CowList).with_threads(20),
        );

        // -- Synthetic scenarios --------------------------------------------
        add(
            &mut reg,
            "Sharded KV store, hot Zipf keys (skew 1.2): two buckets absorb most traffic",
            ScenarioSpec::new(
                "kv-hot-zipf",
                WorkloadSpec::ZipfKv { buckets: 64, skew_milli: 1_200, write_pct: 30 },
            )
            .with_threads(16),
        );
        add(
            &mut reg,
            "Sharded KV store, cold keys (skew 0.1): traffic spread over 64 buckets",
            ScenarioSpec::new(
                "kv-cold-zipf",
                WorkloadSpec::ZipfKv { buckets: 64, skew_milli: 100, write_pct: 30 },
            )
            .with_threads(16),
        );
        // -- The `kv` scenario family (shared with the native poly-store) --
        add(
            &mut reg,
            "poly-store kv family: read-mostly uniform traffic, the cache-like baseline",
            ScenarioSpec::new("kv-uniform", WorkloadSpec::Kv(KvMix::uniform())).with_threads(16),
        );
        add(
            &mut reg,
            "poly-store kv family: hot Zipf keys (skew 1.2), the contention regime",
            ScenarioSpec::new("kv-zipf", WorkloadSpec::Kv(KvMix::zipf_hot())).with_threads(16),
        );
        add(
            &mut reg,
            "poly-store kv family: 30% full scans over a small keyspace",
            ScenarioSpec::new("kv-scan-heavy", WorkloadSpec::Kv(KvMix::scan_heavy()))
                .with_threads(16),
        );
        add(
            &mut reg,
            "poly-store kv family: write burst with 32-op batching (group-commit shape)",
            ScenarioSpec::new("kv-write-burst", WorkloadSpec::Kv(KvMix::write_burst()))
                .with_threads(16),
        );

        // -- The `kv-net` family: serving-shaped mixes for the TCP
        // front-end (smaller keyspaces, so loopback cells finish fast;
        // run them with `store sweep --transport tcp|local`, or simulated
        // here like any other kv workload) ------------------------------
        add(
            &mut reg,
            "kv-net family: read-mostly uniform traffic sized for the TCP front-end",
            ScenarioSpec::new(
                "kv-net-uniform",
                WorkloadSpec::Kv(KvMix { keys: 16_384, shards: 16, ..KvMix::uniform() }),
            )
            .with_threads(8),
        );
        add(
            &mut reg,
            "kv-net family: hot Zipf keys over the TCP front-end — contention plus the wire",
            ScenarioSpec::new(
                "kv-net-zipf",
                WorkloadSpec::Kv(KvMix { keys: 16_384, shards: 16, ..KvMix::zipf_hot() }),
            )
            .with_threads(8),
        );
        add(
            &mut reg,
            "kv-net family: write bursts shipped as BATCH frames (16-op group commit)",
            ScenarioSpec::new(
                "kv-net-burst",
                WorkloadSpec::Kv(KvMix {
                    keys: 16_384,
                    shards: 16,
                    batch: 16,
                    ..KvMix::write_burst()
                }),
            )
            .with_threads(8),
        );
        // The c10k pair: connection-count stress for the epoll server
        // (four digits of mostly-idle connections, pipelined ops fanned
        // across them — `store sweep --transport tcp --server
        // threads,epoll --conns 512 --depth 16`).
        add(
            &mut reg,
            "kv-net family: c10k-shape uniform traffic — thousands of pipelined connections",
            ScenarioSpec::new(
                "kv-net-c10k",
                WorkloadSpec::Kv(KvMix { keys: 16_384, shards: 16, ..KvMix::uniform() }),
            )
            .with_threads(4),
        );
        add(
            &mut reg,
            "kv-net family: c10k-shape hot Zipf keys — connection scale on a contended store",
            ScenarioSpec::new(
                "kv-net-c10k-zipf",
                WorkloadSpec::Kv(KvMix { keys: 16_384, shards: 16, ..KvMix::zipf_hot() }),
            )
            .with_threads(4),
        );

        // -- The `kv-cap` family: mixes sized for frequency-capped
        // sweeps (small keyspaces so a full `--freq` ladder of cells
        // finishes fast; sweep them with `store sweep --freq
        // base,<khz,...>` on a cappable host, or simulated here with
        // `scenarios sweep --freq`) --------------------------------------
        add(
            &mut reg,
            "kv-cap family: read-mostly uniform traffic swept across a frequency ladder",
            ScenarioSpec::new(
                "kv-cap-uniform",
                WorkloadSpec::Kv(KvMix { keys: 8_192, shards: 8, ..KvMix::uniform() }),
            )
            .with_threads(8),
        );
        add(
            &mut reg,
            "kv-cap family: hot Zipf keys under DVFS — where spin-vs-sleep rankings invert",
            ScenarioSpec::new(
                "kv-cap-zipf",
                WorkloadSpec::Kv(KvMix { keys: 8_192, shards: 8, ..KvMix::zipf_hot() }),
            )
            .with_threads(8),
        );

        // -- The `kv-cache` family: the §6 Memcached item model run
        // against the byte-value store — hot Zipf keys, exponential item
        // sizes (mean 256 B, cap 4 KiB), get/put only. Natively these
        // exercise TTL/CLOCK eviction (`store sweep --mem-budget`);
        // simulated they land next to the `memcached-mix` system model
        // for the head-to-head comparison. ------------------------------
        add(
            &mut reg,
            "kv-cache family: balanced 50/50 get/put over the §6 Memcached item sizes",
            ScenarioSpec::new("kv-cache-zipf", WorkloadSpec::Kv(KvMix::cache(50))).with_threads(8),
        );
        add(
            &mut reg,
            "kv-cache family: read-mostly (90% GET) — the steady-state cache hit path",
            ScenarioSpec::new("kv-cache-get", WorkloadSpec::Kv(KvMix::cache(10))).with_threads(8),
        );
        add(
            &mut reg,
            "kv-cache family: write-heavy (90% SET) fill — slab churn and eviction stress",
            ScenarioSpec::new("kv-cache-set", WorkloadSpec::Kv(KvMix::cache(90))).with_threads(8),
        );

        add(
            &mut reg,
            "Producer-consumer pipeline: mutex-guarded queue plus condvar wake-ups",
            ScenarioSpec::new("pipeline", WorkloadSpec::Pipeline).with_threads(8),
        );
        add(
            &mut reg,
            "Readers-writers skew: one process-wide rwlock, 10% writes",
            ScenarioSpec::new(
                "readers-writers",
                WorkloadSpec::ReadersWriters { write_pct: 10, read_cs: 1_500, write_cs: 6_000 },
            )
            .with_threads(16),
        );
        add(
            &mut reg,
            "Oversubscription storm: 120 unpinned threads on 40 contexts, short hot sections",
            ScenarioSpec::new("oversub-storm", WorkloadSpec::OversubStorm { sections: 4 })
                .with_threads(120),
        );
        add(
            &mut reg,
            "Condvar ping-pong: half the threads signal, half sleep — wake-up latency stress",
            ScenarioSpec::new("condvar-pingpong", WorkloadSpec::CondvarPingPong).with_threads(8),
        );

        // -- The six §6 system models ---------------------------------------
        add(
            &mut reg,
            "HamsterDB write-heavy (90% writes): one big lock, long B-tree sections",
            ScenarioSpec::new("hamsterdb-wt", WorkloadSpec::System(PaperSystem::HamsterDb(90))),
        );
        add(
            &mut reg,
            "Kyoto Cabinet B-tree: every method behind one rwlock, longest sections",
            ScenarioSpec::new(
                "kyoto-btree",
                WorkloadSpec::System(PaperSystem::Kyoto(KyotoVariant::BTree)),
            ),
        );
        add(
            &mut reg,
            "Memcached 50/50 SET/GET: zipf bucket locks plus the global LRU lock",
            ScenarioSpec::new("memcached-mix", WorkloadSpec::System(PaperSystem::Memcached(50))),
        );
        add(
            &mut reg,
            "MySQL/LinkBench in-memory: 96 connection threads, heavily oversubscribed",
            ScenarioSpec::new(
                "mysql-mem",
                WorkloadSpec::System(PaperSystem::MySql(MySqlVariant::Mem)),
            ),
        );
        add(
            &mut reg,
            "RocksDB write-heavy: write-queue mutex and group-commit condvar",
            ScenarioSpec::new("rocksdb-wt", WorkloadSpec::System(PaperSystem::RocksDb(90))),
        );
        add(
            &mut reg,
            "SQLite TPC-C at 64 connections: oversubscribed, one database lock",
            ScenarioSpec::new("sqlite-64", WorkloadSpec::System(PaperSystem::Sqlite(64))),
        );
        assert_eq!(
            reg.len(),
            Self::BUILTIN_LEN,
            "Registry::BUILTIN_LEN is stale; update it with the new scenario"
        );
        reg
    }

    /// Registers a scenario under its spec's name.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken (registry names are unique).
    pub fn register(&mut self, about: &'static str, spec: ScenarioSpec) {
        assert!(self.get(&spec.name).is_none(), "duplicate scenario name: {}", spec.name);
        self.entries.push(RegistryEntry { about, spec });
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&RegistryEntry> {
        self.entries.iter().find(|e| e.spec.name == name)
    }

    /// All entries, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter()
    }

    /// All scenario names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.spec.name.as_str()).collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_matches_its_published_count() {
        let reg = Registry::builtin();
        assert_eq!(reg.len(), Registry::BUILTIN_LEN);
        let names = reg.names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate names in {names:?}");
        assert!(reg.get("lock-stress").is_some());
        assert!(reg.get("mysql-mem").is_some());
        assert!(reg.get("missing").is_none());
    }

    /// Every registered `kv` workload's label must round-trip through
    /// `KvMix::parse_label` — the report-schema join key. A mix whose
    /// label drops a field (value distribution, batch size) would make
    /// sweep rows unparseable back into specs.
    #[test]
    fn kv_labels_round_trip_through_parse() {
        let mut seen = 0;
        for e in Registry::builtin().iter() {
            if let WorkloadSpec::Kv(mix) = &e.spec.workload {
                let label = mix.label();
                let parsed = KvMix::parse_label(&label)
                    .unwrap_or_else(|| panic!("{}: unparseable label {label}", e.spec.name));
                assert_eq!(parsed.label(), label, "{} label did not round-trip", e.spec.name);
                seen += 1;
            }
        }
        assert!(seen >= 13, "expected the kv families to be registered, saw {seen}");
    }

    /// The cache family rides the §6 Memcached item model: exponential
    /// value sizes, get/put only.
    #[test]
    fn kv_cache_family_uses_byte_values() {
        let reg = Registry::builtin();
        for (name, put_pct) in [("kv-cache-zipf", 50), ("kv-cache-get", 10), ("kv-cache-set", 90)] {
            let spec = &reg.get(name).unwrap_or_else(|| panic!("{name} missing")).spec;
            let WorkloadSpec::Kv(mix) = &spec.workload else {
                panic!("{name} is not a kv workload");
            };
            assert_eq!(mix.put_pct, put_pct, "{name}");
            assert_eq!(mix.get_pct, 100 - put_pct, "{name}");
            assert_eq!(mix.value, poly_store::ValueDist::Exp { mean: 256, cap: 4_096 }, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_names_are_rejected() {
        let mut reg = Registry::builtin();
        reg.register("again", ScenarioSpec::new("lock-stress", WorkloadSpec::CowList));
    }
}
