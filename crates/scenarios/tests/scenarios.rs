//! Scenario subsystem integration tests: registry coverage and sweep
//! determinism.

use poly_locks_sim::LockKind;
use poly_scenarios::{
    cross, cross_shards, parse_lock, write_reports, MachineKind, Registry, SinkFormat, SweepRunner,
    WorkloadSpec,
};
use poly_store::KvMix;

/// Registry hygiene: the count is pinned in exactly one place
/// ([`Registry::BUILTIN_LEN`]), every name is unique, and every `kv` /
/// `kv-net` entry survives the report-schema round trip — the workload
/// label a sweep emits parses back to the same mix, and the enumerable
/// spec fields (lock, machine) parse back from their serialized labels.
#[test]
fn registry_hygiene_count_names_and_kv_round_trips() {
    let reg = Registry::builtin();
    assert_eq!(reg.len(), Registry::BUILTIN_LEN);

    let names = reg.names();
    let mut dedup = names.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate scenario names: {names:?}");

    let mut kv_entries = 0;
    for e in reg.iter() {
        let spec = &e.spec;
        // Enumerable fields of every entry serialize to parseable labels.
        assert_eq!(parse_lock(spec.lock.label()), Some(spec.lock), "{}", spec.name);
        assert_eq!(MachineKind::parse(spec.machine.label()), Some(spec.machine), "{}", spec.name);
        let json = spec.to_json();
        assert!(json.contains(&format!("\"name\":\"{}\"", spec.name)), "{json}");

        if let WorkloadSpec::Kv(mix) = spec.workload {
            kv_entries += 1;
            mix.validate().unwrap_or_else(|err| panic!("{}: invalid mix: {err}", spec.name));
            let parsed = KvMix::parse_label(&mix.label())
                .unwrap_or_else(|| panic!("{}: label {:?} does not parse", spec.name, mix.label()));
            // The label round-trips everything it encodes (keyspace size
            // is not part of the label, and batch 0/1 share the canonical
            // unbatched spelling; normalize both before comparing).
            let canonical = KvMix { batch: if mix.batch <= 1 { 0 } else { mix.batch }, ..mix };
            assert_eq!(KvMix { keys: mix.keys, ..parsed }, canonical, "{} round-trip", spec.name);
            assert_eq!(parsed.label(), mix.label(), "{} label stability", spec.name);
        }
    }
    // The kv family (4) plus the kv-net family (3 + the c10k pair) plus
    // the kv-cap family (2) plus the kv-cache family (3).
    assert_eq!(kv_entries, 14, "kv/kv-net/kv-cap/kv-cache families changed size");
}

/// Every built-in scenario must build and complete a short smoke run with
/// real forward progress — a registry entry that stalls or panics is dead
/// weight.
#[test]
fn every_builtin_scenario_smoke_runs() {
    let reg = Registry::builtin();
    assert_eq!(reg.len(), Registry::BUILTIN_LEN);
    let bases: Vec<_> =
        reg.iter().map(|e| e.spec.clone().with_duration(2_000_000, 200_000)).collect();
    // One cell per scenario, via the parallel runner (which also exercises
    // the runner against every workload shape).
    let cells = cross(&bases, &[], &[], 1);
    let reports = SweepRunner::new().run(&cells);
    for r in &reports {
        assert!(r.total_ops > 0, "{} made no progress", r.scenario);
        assert!(r.throughput > 0.0, "{} has zero throughput", r.scenario);
        assert!(r.energy_j > 0.0, "{} consumed no energy", r.scenario);
        assert!(r.epo_uj.is_finite(), "{} has no energy-per-op", r.scenario);
    }
}

/// Same spec + seed => byte-identical reports, run after run, regardless
/// of worker count or sibling cells.
#[test]
fn same_spec_and_seed_is_byte_identical() {
    let reg = Registry::builtin();
    let bases: Vec<_> = ["lock-stress", "kv-hot-zipf", "pipeline", "rocksdb-wt"]
        .iter()
        .map(|n| {
            reg.get(n)
                .unwrap_or_else(|| panic!("{n} is built in"))
                .spec
                .clone()
                .with_duration(3_000_000, 300_000)
        })
        .collect();
    let cells = cross(&bases, &[LockKind::Mutex, LockKind::Mutexee], &[4], 7);
    let first = SweepRunner::with_workers(4).run(&cells);
    let second = SweepRunner::with_workers(2).run(&cells);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.to_json(), b.to_json(), "non-deterministic cell: {}", a.scenario);
        assert_eq!(a.to_csv(), b.to_csv());
    }
}

/// The CI gate for the `kv` family: the same seed must yield
/// byte-identical sweep JSONL across runs and worker counts, over the
/// full lock x shard x thread cross product.
#[test]
fn kv_sweep_jsonl_is_deterministic() {
    let reg = Registry::builtin();
    let base = reg.get("kv-zipf").unwrap().spec.clone().with_duration(2_000_000, 200_000);
    let jsonl = |workers: usize| {
        let cells = cross_shards(
            std::slice::from_ref(&base),
            &[LockKind::Mutex, LockKind::Mutexee],
            &[4, 8],
            &[8, 32],
            2026,
        );
        assert_eq!(cells.len(), 8);
        let reports = SweepRunner::with_workers(workers).run(&cells);
        let mut out = Vec::new();
        write_reports(&mut out, SinkFormat::JsonLines, &reports).unwrap();
        String::from_utf8(out).unwrap()
    };
    let first = jsonl(1);
    let second = jsonl(4);
    assert_eq!(first, second, "same seed produced different sweep JSONL");
    assert_eq!(first.lines().count(), 8);
    for line in first.lines() {
        assert!(line.contains("\"workload\":\"kv/"), "workload label missing: {line}");
        assert!(line.contains("\"throughput\":"), "throughput missing: {line}");
        assert!(line.contains("\"p99_acq_cycles\":"), "p99 missing: {line}");
        assert!(line.contains("\"epo_uj\":"), "energy-per-op missing: {line}");
    }
    // And a different seed must not reproduce it.
    let cells = cross_shards(&[base], &[LockKind::Mutex, LockKind::Mutexee], &[4, 8], &[8, 32], 7);
    let reports = SweepRunner::with_workers(2).run(&cells);
    let mut out = Vec::new();
    write_reports(&mut out, SinkFormat::JsonLines, &reports).unwrap();
    assert_ne!(first, String::from_utf8(out).unwrap());
}

/// Every mix of the kv family simulates and makes progress, including the
/// batched write-burst shape and the scan-heavy shape.
#[test]
fn kv_family_covers_its_mixes() {
    let reg = Registry::builtin();
    for name in ["kv-uniform", "kv-zipf", "kv-scan-heavy", "kv-write-burst"] {
        let spec = reg
            .get(name)
            .unwrap_or_else(|| panic!("{name} is built in"))
            .spec
            .clone()
            .with_threads(8)
            .with_duration(2_000_000, 200_000);
        let shards = spec.workload.shard_count().expect("kv workloads have a shard axis");
        assert!(shards > 1);
        let r = spec.run();
        assert!(r.total_ops > 0, "{name} stalled");
    }
}

/// Different sweep seeds must actually change the sampled workloads.
#[test]
fn sweep_seed_reaches_the_workload() {
    let reg = Registry::builtin();
    let base = reg.get("kv-hot-zipf").unwrap().spec.clone().with_duration(3_000_000, 300_000);
    let a = SweepRunner::with_workers(1).run(&cross(std::slice::from_ref(&base), &[], &[], 1));
    let b = SweepRunner::with_workers(1).run(&cross(&[base], &[], &[], 2));
    assert_ne!(a[0].seed, b[0].seed);
    assert_ne!(
        (a[0].total_ops, a[0].energy_j.to_bits()),
        (b[0].total_ops, b[0].energy_j.to_bits()),
        "seed change did not reach the workload rng"
    );
}

/// The sweep cross product covers locks x threads for synthetic scenarios
/// and pins system scenarios to their Table 3 thread counts.
#[test]
fn cross_product_respects_thread_ownership() {
    let reg = Registry::builtin();
    let synth = reg.get("lock-stress").unwrap().spec.clone();
    let system = reg.get("sqlite-64").unwrap().spec.clone();
    let cells = cross(&[synth, system], &[LockKind::Mutex, LockKind::Ticket], &[4, 8, 16], 3);
    // 2 locks x 3 thread counts for the synthetic + 2 locks x 1 for SQLite.
    assert_eq!(cells.len(), 8);
    assert!(cells.iter().filter(|c| c.name == "sqlite-64").all(|c| c.effective_threads() == 64));
}

/// The tiny machine keeps scenario smoke runs honest in CI.
#[test]
fn scenarios_run_on_every_machine_kind() {
    let reg = Registry::builtin();
    for machine in [MachineKind::Xeon, MachineKind::CoreI7, MachineKind::Tiny] {
        let spec = reg
            .get("lock-stress")
            .unwrap()
            .spec
            .clone()
            .with_machine(machine)
            .with_threads(2)
            .with_duration(1_000_000, 100_000);
        let r = spec.run();
        assert!(r.total_ops > 0, "{} stalled", machine.label());
    }
}
