//! Property-based tests spanning the workspace.

use poly_locks_sim::{Dist, LockKind, LockParams, LockStress, LockStressConfig, SimLock};
use poly_sim::{Histogram, MachineConfig, PinPolicy, RunSpec, SimBuilder};
use proptest::prelude::*;

proptest! {
    /// The log-bucketed histogram's percentiles track exact percentiles
    /// within its documented ~7% relative error.
    #[test]
    fn histogram_tracks_exact_percentiles(
        mut values in proptest::collection::vec(1u64..1_000_000_000, 50..500),
        p in 1.0f64..100.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((p / 100.0 * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1] as f64;
        let approx = h.percentile(p) as f64;
        prop_assert!(
            approx <= exact * 1.08 && approx >= exact * 0.90,
            "p{p}: approx {approx} exact {exact}"
        );
    }

    /// Histogram merging equals recording the union.
    #[test]
    fn histogram_merge_is_union(
        a in proptest::collection::vec(0u64..1_000_000, 1..100),
        b in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.max(), hu.max());
        prop_assert_eq!(ha.percentile(50.0), hu.percentile(50.0));
    }

    /// Any lock, any small configuration: the run completes with mutual
    /// exclusion intact (engine-checked), sane accounting and physical
    /// power bounds.
    #[test]
    fn random_lock_configs_behave(
        kind_idx in 0usize..7,
        threads in 1usize..5,
        cs in 1u64..5_000,
        seed in 0u64..1_000,
    ) {
        let kind = LockKind::ALL[kind_idx];
        let mut b = SimBuilder::new(MachineConfig::tiny());
        b.seed(seed);
        let lock = SimLock::alloc(&mut b, kind, threads, LockParams::default());
        for _ in 0..threads {
            b.spawn(
                Box::new(LockStress::new(
                    vec![lock.clone()],
                    LockStressConfig { cs: Dist::Fixed(cs), non_cs: Dist::Uniform(0, 200) },
                )),
                PinPolicy::PaperOrder,
            );
        }
        let r = b.run(RunSpec { duration: 2_000_000, warmup: 0 });
        prop_assert!(r.total_ops > 0, "{} stalled", kind.label());
        let acquires: u64 = r.threads.iter().map(|t| t.acquires).sum();
        prop_assert!(acquires >= r.total_ops);
        prop_assert!(r.energy.total_j() > 0.0);
        // Physical envelope of the tiny machine config (Xeon calibration).
        prop_assert!(r.avg_power.total_w >= 27.0 && r.avg_power.total_w <= 207.0,
            "power {}", r.avg_power.total_w);
    }
}
