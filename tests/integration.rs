//! Cross-crate integration tests: the full stack from workload models down
//! to the energy model.

use poly_locks_sim::{Dist, LockKind, LockParams, LockStress, LockStressConfig, SimLock};
use poly_sim::{MachineConfig, PinPolicy, RunSpec, SimBuilder};
use poly_systems::PaperSystem;

#[test]
fn energy_accounting_is_conserved_end_to_end() {
    // energy == avg_power * time, and power stays within the machine's
    // physical envelope (idle..max), for a real contended workload.
    let mut b = SimBuilder::new(MachineConfig::xeon());
    let lock = SimLock::alloc(&mut b, LockKind::Ttas, 16, LockParams::default());
    for _ in 0..16 {
        b.spawn(
            Box::new(LockStress::new(
                vec![lock.clone()],
                LockStressConfig { cs: Dist::Fixed(1000), non_cs: Dist::Fixed(100) },
            )),
            PinPolicy::PaperOrder,
        );
    }
    let r = b.run(RunSpec { duration: 20_000_000, warmup: 2_000_000 });
    let implied_power = r.energy.total_j() / r.seconds;
    assert!((implied_power - r.avg_power.total_w).abs() < 1e-6);
    assert!(r.avg_power.total_w > 55.0, "above idle: {}", r.avg_power.total_w);
    assert!(r.avg_power.total_w < 207.0, "below max: {}", r.avg_power.total_w);
    assert!(r.avg_power.pkg_w >= r.avg_power.cores_w, "package includes cores");
}

#[test]
fn full_stack_determinism() {
    let run = || {
        let mut b = SimBuilder::new(MachineConfig::xeon());
        b.seed(7);
        PaperSystem::Memcached(50).build(&mut b, LockKind::Mutexee);
        let r = b.run(RunSpec { duration: 8_000_000, warmup: 800_000 });
        (r.total_ops, r.energy.pkg_j.to_bits(), r.futex)
    };
    assert_eq!(run(), run());
}

#[test]
fn seeds_change_outcomes() {
    let run = |seed: u64| {
        let mut b = SimBuilder::new(MachineConfig::xeon());
        b.seed(seed);
        PaperSystem::HamsterDb(50).build(&mut b, LockKind::Mutex);
        b.run(RunSpec { duration: 8_000_000, warmup: 800_000 }).total_ops
    };
    // Different seeds shuffle the exponential service times; identical
    // totals would indicate the rng is not plumbed through.
    assert_ne!(run(1), run(2));
}

#[test]
fn mutual_exclusion_holds_for_every_lock_on_the_xeon() {
    // 20 threads, short CS, every algorithm; the engine's CS tracker
    // panics on any violation.
    for kind in LockKind::ALL {
        let mut b = SimBuilder::new(MachineConfig::xeon());
        let lock = SimLock::alloc(&mut b, kind, 20, LockParams::default());
        for _ in 0..20 {
            b.spawn(
                Box::new(LockStress::new(
                    vec![lock.clone()],
                    LockStressConfig { cs: Dist::Exp(800), non_cs: Dist::Uniform(0, 300) },
                )),
                PinPolicy::PaperOrder,
            );
        }
        let r = b.run(RunSpec { duration: 10_000_000, warmup: 1_000_000 });
        assert!(r.total_ops > 100, "{} stalled", kind.label());
    }
}

#[test]
fn poly_conjecture_holds_on_the_single_lock_microbenchmark() {
    // The headline claim: ranking locks by throughput and by TPP gives
    // (nearly) the same order. Spearman over the 6 locks at 20 threads.
    let mut results: Vec<(f64, f64)> = Vec::new();
    for kind in [
        LockKind::Mutex,
        LockKind::Tas,
        LockKind::Ttas,
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutexee,
    ] {
        let mut b = SimBuilder::new(MachineConfig::xeon());
        let lock = SimLock::alloc(&mut b, kind, 20, LockParams::default());
        for _ in 0..20 {
            b.spawn(
                Box::new(LockStress::new(
                    vec![lock.clone()],
                    LockStressConfig { cs: Dist::Fixed(1000), non_cs: Dist::Uniform(0, 200) },
                )),
                PinPolicy::PaperOrder,
            );
        }
        let r = b.run(RunSpec { duration: 20_000_000, warmup: 2_000_000 });
        results.push((r.throughput, r.tpp));
    }
    let rank = |vals: Vec<f64>| {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]));
        let mut ranks = vec![0usize; vals.len()];
        for (r, &i) in idx.iter().enumerate() {
            ranks[i] = r;
        }
        ranks
    };
    let thr_ranks = rank(results.iter().map(|r| r.0).collect());
    let tpp_ranks = rank(results.iter().map(|r| r.1).collect());
    let disagreements: usize = thr_ranks.iter().zip(&tpp_ranks).map(|(a, b)| a.abs_diff(*b)).sum();
    // The paper's SS5.3 exception applies at exactly this kind of high
    // contention: a sleeping lock (MUTEXEE) can win TPP with slightly
    // lower throughput, so rankings correlate but need not match.
    assert!(
        disagreements <= 8,
        "throughput and TPP rankings diverged: {thr_ranks:?} vs {tpp_ranks:?}"
    );
    // Quantified POLY: the best-TPP lock loses little throughput (paper:
    // ~8% on average), and the best-throughput lock loses little TPP.
    let best_thr = results.iter().map(|r| r.0).fold(0.0, f64::max);
    let best_tpp = results.iter().map(|r| r.1).fold(0.0, f64::max);
    let (thr_of_best_tpp, _) = results.iter().max_by(|a, b| a.1.total_cmp(&b.1)).copied().unwrap();
    let (_, tpp_of_best_thr) = results.iter().max_by(|a, b| a.0.total_cmp(&b.0)).copied().unwrap();
    assert!(
        thr_of_best_tpp >= 0.75 * best_thr,
        "best-TPP lock sacrifices too much throughput: {thr_of_best_tpp} vs {best_thr}"
    );
    assert!(
        tpp_of_best_thr >= 0.5 * best_tpp,
        "best-throughput lock sacrifices too much TPP: {tpp_of_best_thr} vs {best_tpp}"
    );
}

#[test]
fn sleeping_locks_draw_less_power_under_heavy_contention() {
    // The power side of the trade-off: MUTEX (sleeping) must consume less
    // than TICKET (all 40 contexts spinning) on a hot global lock.
    let power = |kind: LockKind| {
        let mut b = SimBuilder::new(MachineConfig::xeon());
        let lock = SimLock::alloc(&mut b, kind, 40, LockParams::default());
        for _ in 0..40 {
            b.spawn(
                Box::new(LockStress::new(
                    vec![lock.clone()],
                    LockStressConfig { cs: Dist::Fixed(4000), non_cs: Dist::Fixed(100) },
                )),
                PinPolicy::PaperOrder,
            );
        }
        b.run(RunSpec { duration: 15_000_000, warmup: 1_500_000 }).avg_power.total_w
    };
    let mutex_w = power(LockKind::Mutex);
    let ticket_w = power(LockKind::Ticket);
    assert!(
        mutex_w < ticket_w - 5.0,
        "sleeping must save power: MUTEX {mutex_w:.1} W vs TICKET {ticket_w:.1} W"
    );
}
