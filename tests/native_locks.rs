//! Stress tests of the native `lockin` crate under real threads.

use lockin::{
    ClhLock, Condvar, FutexMutex, Lock, McsLock, Mutexee, MutexeeConfig, RawLock, RwLock, TasLock,
    TicketLock, TtasLock,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stress parameters scaled to the host: on a single hardware thread every
/// spinlock handover burns a scheduler quantum (the paper's oversubscription
/// pathology, live), so full-size runs would take minutes per lock. The
/// invariants are identical either way; only the counts shrink.
///
/// Same policy as `lockin`'s crate-private `test_stress_scale` (threads
/// capped at 4, iterations divided by 20 with a 500 floor — inert here,
/// since 25_000 / 20 = 1250 > 500, so it is not restated); that helper is
/// `#[cfg(test)]` and unreachable from this integration test, so keep the
/// two in step when tuning either.
fn stress_size() -> (u64, u64) {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cpus > 1 {
        (8, 25_000)
    } else {
        (4, 25_000 / 20u64)
    }
}

fn raw_stress<L: RawLock + Send + Sync>() {
    let counter = Lock::<u64, L>::new(0);
    let (threads, iters) = stress_size();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for i in 0..iters {
                    let mut g = counter.lock();
                    *g += 1;
                    // Vary hold times so futex paths are exercised too.
                    if i % 1024 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            });
        }
    });
    assert_eq!(counter.into_inner(), threads * iters);
}

#[test]
fn tas_stress() {
    raw_stress::<TasLock>();
}

#[test]
fn ttas_stress() {
    raw_stress::<TtasLock>();
}

#[test]
fn ticket_stress() {
    raw_stress::<TicketLock>();
}

#[test]
fn futex_mutex_stress() {
    raw_stress::<FutexMutex>();
}

#[test]
fn mutexee_stress() {
    raw_stress::<Mutexee>();
}

#[test]
fn mcs_guard_stress() {
    let (threads, iters) = stress_size();
    let lock = McsLock::new();
    let counter = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..iters {
                    let _g = lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(counter.into_inner(), threads * iters);
}

#[test]
fn clh_guard_stress() {
    let (threads, iters) = stress_size();
    let lock = ClhLock::new();
    let counter = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..iters {
                    let _g = lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(counter.into_inner(), threads * iters);
}

#[test]
fn mutexee_with_timeouts_is_correct() {
    let cfg = MutexeeConfig {
        sleep_timeout: Some(std::time::Duration::from_micros(100)),
        spin_budget: 8,
        ..MutexeeConfig::default()
    };
    let counter = Arc::new(Lock::<u64, Mutexee>::with_raw(0, Mutexee::new(cfg)));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let c = counter.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..10_000u64 {
                let mut g = c.lock();
                *g += 1;
                if i % 2048 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(300));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*counter.lock(), 80_000);
}

#[test]
fn rwlock_readers_see_consistent_pairs() {
    // Writers keep (a, b) with a == b; readers must never observe a torn
    // pair.
    let pair = RwLock::<(u64, u64), Mutexee>::new((0, 0));
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                for i in 1..=20_000u64 {
                    let mut g = pair.write();
                    g.0 = i;
                    g.1 = i;
                }
            });
        }
        for _ in 0..6 {
            s.spawn(|| {
                for _ in 0..20_000 {
                    let g = pair.read();
                    assert_eq!(g.0, g.1, "torn read: {:?}", *g);
                }
            });
        }
    });
}

#[test]
fn condvar_bounded_queue() {
    const CAP: usize = 4;
    let q = Arc::new(Lock::<Vec<u64>, FutexMutex>::new(Vec::new()));
    let not_full = Arc::new(Condvar::new());
    let not_empty = Arc::new(Condvar::new());
    let total = 20_000u64;
    let producer = {
        let (q, nf, ne) = (q.clone(), not_full.clone(), not_empty.clone());
        std::thread::spawn(move || {
            for i in 0..total {
                let mut g = q.lock();
                while g.len() >= CAP {
                    g = nf.wait_timeout(g, std::time::Duration::from_millis(50));
                }
                g.push(i);
                drop(g);
                ne.notify_one();
            }
        })
    };
    let consumer = {
        let (q, nf, ne) = (q.clone(), not_full.clone(), not_empty.clone());
        std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..total {
                let mut g = q.lock();
                while g.is_empty() {
                    g = ne.wait_timeout(g, std::time::Duration::from_millis(50));
                }
                sum += g.remove(0);
                drop(g);
                nf.notify_one();
            }
            sum
        })
    };
    producer.join().unwrap();
    let sum = consumer.join().unwrap();
    assert_eq!(sum, total * (total - 1) / 2);
}
