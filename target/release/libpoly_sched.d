/root/repo/target/release/libpoly_sched.rlib: /root/repo/crates/sched/src/lib.rs
