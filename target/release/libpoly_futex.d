/root/repo/target/release/libpoly_futex.rlib: /root/repo/crates/futex/src/config.rs /root/repo/crates/futex/src/lib.rs /root/repo/crates/futex/src/stats.rs /root/repo/crates/futex/src/table.rs
