/root/repo/target/release/deps/fig03-0cedf5c71c686e12.d: crates/bench/src/bin/fig03.rs Cargo.toml

/root/repo/target/release/deps/libfig03-0cedf5c71c686e12.rmeta: crates/bench/src/bin/fig03.rs Cargo.toml

crates/bench/src/bin/fig03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
