/root/repo/target/release/deps/prop-ef8e57a0fc7768f7.d: tests/prop.rs

/root/repo/target/release/deps/prop-ef8e57a0fc7768f7: tests/prop.rs

tests/prop.rs:
