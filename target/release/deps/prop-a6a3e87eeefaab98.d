/root/repo/target/release/deps/prop-a6a3e87eeefaab98.d: crates/futex/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-a6a3e87eeefaab98.rmeta: crates/futex/tests/prop.rs Cargo.toml

crates/futex/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
