/root/repo/target/release/deps/fig11-04f1faa663b650b2.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/release/deps/libfig11-04f1faa663b650b2.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
