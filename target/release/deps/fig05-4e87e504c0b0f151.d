/root/repo/target/release/deps/fig05-4e87e504c0b0f151.d: crates/bench/src/bin/fig05.rs

/root/repo/target/release/deps/fig05-4e87e504c0b0f151: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
