/root/repo/target/release/deps/tab44-1620a03c41f2adcb.d: crates/bench/src/bin/tab44.rs

/root/repo/target/release/deps/tab44-1620a03c41f2adcb: crates/bench/src/bin/tab44.rs

crates/bench/src/bin/tab44.rs:
