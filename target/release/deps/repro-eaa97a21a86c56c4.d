/root/repo/target/release/deps/repro-eaa97a21a86c56c4.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/release/deps/librepro-eaa97a21a86c56c4.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
