/root/repo/target/release/deps/fig13-155be42518eb4906.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/release/deps/libfig13-155be42518eb4906.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
