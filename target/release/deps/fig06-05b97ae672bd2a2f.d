/root/repo/target/release/deps/fig06-05b97ae672bd2a2f.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-05b97ae672bd2a2f: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
