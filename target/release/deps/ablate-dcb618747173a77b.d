/root/repo/target/release/deps/ablate-dcb618747173a77b.d: crates/bench/src/bin/ablate.rs Cargo.toml

/root/repo/target/release/deps/libablate-dcb618747173a77b.rmeta: crates/bench/src/bin/ablate.rs Cargo.toml

crates/bench/src/bin/ablate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
