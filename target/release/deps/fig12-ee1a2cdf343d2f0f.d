/root/repo/target/release/deps/fig12-ee1a2cdf343d2f0f.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/release/deps/libfig12-ee1a2cdf343d2f0f.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
