/root/repo/target/release/deps/fig02-a42540384467a8a9.d: crates/bench/src/bin/fig02.rs Cargo.toml

/root/repo/target/release/deps/libfig02-a42540384467a8a9.rmeta: crates/bench/src/bin/fig02.rs Cargo.toml

crates/bench/src/bin/fig02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
