/root/repo/target/release/deps/rand-01296eb4a917acbe.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

/root/repo/target/release/deps/rand-01296eb4a917acbe: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/rngs.rs:
