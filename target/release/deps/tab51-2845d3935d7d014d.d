/root/repo/target/release/deps/tab51-2845d3935d7d014d.d: crates/bench/src/bin/tab51.rs

/root/repo/target/release/deps/tab51-2845d3935d7d014d: crates/bench/src/bin/tab51.rs

crates/bench/src/bin/tab51.rs:
