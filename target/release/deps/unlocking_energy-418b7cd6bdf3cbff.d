/root/repo/target/release/deps/unlocking_energy-418b7cd6bdf3cbff.d: src/lib.rs

/root/repo/target/release/deps/libunlocking_energy-418b7cd6bdf3cbff.rlib: src/lib.rs

/root/repo/target/release/deps/libunlocking_energy-418b7cd6bdf3cbff.rmeta: src/lib.rs

src/lib.rs:
