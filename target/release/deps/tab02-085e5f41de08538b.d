/root/repo/target/release/deps/tab02-085e5f41de08538b.d: crates/bench/src/bin/tab02.rs

/root/repo/target/release/deps/tab02-085e5f41de08538b: crates/bench/src/bin/tab02.rs

crates/bench/src/bin/tab02.rs:
