/root/repo/target/release/deps/prop-185ed4af1a086c41.d: crates/futex/tests/prop.rs

/root/repo/target/release/deps/prop-185ed4af1a086c41: crates/futex/tests/prop.rs

crates/futex/tests/prop.rs:
