/root/repo/target/release/deps/fig06-b5f7aca71b3e2a78.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-b5f7aca71b3e2a78: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
