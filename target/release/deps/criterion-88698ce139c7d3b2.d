/root/repo/target/release/deps/criterion-88698ce139c7d3b2.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-88698ce139c7d3b2.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
