/root/repo/target/release/deps/ablate-0dbd3da5bcbf166b.d: crates/bench/src/bin/ablate.rs

/root/repo/target/release/deps/ablate-0dbd3da5bcbf166b: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
