/root/repo/target/release/deps/poly_bench-918f52f5f8ca7466.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/poly_bench-918f52f5f8ca7466: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
