/root/repo/target/release/deps/poly_futex-0596d9aa9c1218a5.d: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

/root/repo/target/release/deps/libpoly_futex-0596d9aa9c1218a5.rlib: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

/root/repo/target/release/deps/libpoly_futex-0596d9aa9c1218a5.rmeta: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

crates/futex/src/lib.rs:
crates/futex/src/config.rs:
crates/futex/src/stats.rs:
crates/futex/src/table.rs:
