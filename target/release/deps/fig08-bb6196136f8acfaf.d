/root/repo/target/release/deps/fig08-bb6196136f8acfaf.d: crates/bench/src/bin/fig08.rs

/root/repo/target/release/deps/fig08-bb6196136f8acfaf: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
