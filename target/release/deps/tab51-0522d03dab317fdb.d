/root/repo/target/release/deps/tab51-0522d03dab317fdb.d: crates/bench/src/bin/tab51.rs Cargo.toml

/root/repo/target/release/deps/libtab51-0522d03dab317fdb.rmeta: crates/bench/src/bin/tab51.rs Cargo.toml

crates/bench/src/bin/tab51.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
