/root/repo/target/release/deps/poly_futex-094c16e8eea9d2b9.d: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

/root/repo/target/release/deps/poly_futex-094c16e8eea9d2b9: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

crates/futex/src/lib.rs:
crates/futex/src/config.rs:
crates/futex/src/stats.rs:
crates/futex/src/table.rs:
