/root/repo/target/release/deps/poly_sim-b1585f0c6d059b15.d: crates/sim/src/lib.rs crates/sim/src/builder.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/mem.rs crates/sim/src/ops.rs crates/sim/src/program.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libpoly_sim-b1585f0c6d059b15.rlib: crates/sim/src/lib.rs crates/sim/src/builder.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/mem.rs crates/sim/src/ops.rs crates/sim/src/program.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libpoly_sim-b1585f0c6d059b15.rmeta: crates/sim/src/lib.rs crates/sim/src/builder.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/mem.rs crates/sim/src/ops.rs crates/sim/src/program.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/builder.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/mem.rs:
crates/sim/src/ops.rs:
crates/sim/src/program.rs:
crates/sim/src/stats.rs:
