/root/repo/target/release/deps/poly_sched-53789806cc2d08df.d: crates/sched/src/lib.rs

/root/repo/target/release/deps/libpoly_sched-53789806cc2d08df.rlib: crates/sched/src/lib.rs

/root/repo/target/release/deps/libpoly_sched-53789806cc2d08df.rmeta: crates/sched/src/lib.rs

crates/sched/src/lib.rs:
