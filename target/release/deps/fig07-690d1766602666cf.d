/root/repo/target/release/deps/fig07-690d1766602666cf.d: crates/bench/src/bin/fig07.rs Cargo.toml

/root/repo/target/release/deps/libfig07-690d1766602666cf.rmeta: crates/bench/src/bin/fig07.rs Cargo.toml

crates/bench/src/bin/fig07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
