/root/repo/target/release/deps/fig08-b88f329206bcfff2.d: crates/bench/src/bin/fig08.rs

/root/repo/target/release/deps/fig08-b88f329206bcfff2: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
