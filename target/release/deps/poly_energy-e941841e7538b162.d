/root/repo/target/release/deps/poly_energy-e941841e7538b162.d: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs Cargo.toml

/root/repo/target/release/deps/libpoly_energy-e941841e7538b162.rmeta: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs Cargo.toml

crates/energy/src/lib.rs:
crates/energy/src/activity.rs:
crates/energy/src/config.rs:
crates/energy/src/counters.rs:
crates/energy/src/model.rs:
crates/energy/src/shape.rs:
crates/energy/src/vf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
