/root/repo/target/release/deps/fig03-f4d347c14191603c.d: crates/bench/src/bin/fig03.rs Cargo.toml

/root/repo/target/release/deps/libfig03-f4d347c14191603c.rmeta: crates/bench/src/bin/fig03.rs Cargo.toml

crates/bench/src/bin/fig03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
