/root/repo/target/release/deps/fig10-5390860cd39d3ff8.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-5390860cd39d3ff8: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
