/root/repo/target/release/deps/rwcond-aeaaec70ef3337cc.d: crates/locks-sim/tests/rwcond.rs Cargo.toml

/root/repo/target/release/deps/librwcond-aeaaec70ef3337cc.rmeta: crates/locks-sim/tests/rwcond.rs Cargo.toml

crates/locks-sim/tests/rwcond.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
