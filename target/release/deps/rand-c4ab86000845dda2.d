/root/repo/target/release/deps/rand-c4ab86000845dda2.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs Cargo.toml

/root/repo/target/release/deps/librand-c4ab86000845dda2.rmeta: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs Cargo.toml

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/rngs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
