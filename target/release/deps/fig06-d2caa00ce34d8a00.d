/root/repo/target/release/deps/fig06-d2caa00ce34d8a00.d: crates/bench/src/bin/fig06.rs Cargo.toml

/root/repo/target/release/deps/libfig06-d2caa00ce34d8a00.rmeta: crates/bench/src/bin/fig06.rs Cargo.toml

crates/bench/src/bin/fig06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
