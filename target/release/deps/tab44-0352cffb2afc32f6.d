/root/repo/target/release/deps/tab44-0352cffb2afc32f6.d: crates/bench/src/bin/tab44.rs Cargo.toml

/root/repo/target/release/deps/libtab44-0352cffb2afc32f6.rmeta: crates/bench/src/bin/tab44.rs Cargo.toml

crates/bench/src/bin/tab44.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
