/root/repo/target/release/deps/fig02-42e072d4a78facb8.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-42e072d4a78facb8: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
