/root/repo/target/release/deps/rand-059f88008705d815.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

/root/repo/target/release/deps/librand-059f88008705d815.rlib: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

/root/repo/target/release/deps/librand-059f88008705d815.rmeta: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/rngs.rs:
