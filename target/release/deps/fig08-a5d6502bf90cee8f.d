/root/repo/target/release/deps/fig08-a5d6502bf90cee8f.d: crates/bench/src/bin/fig08.rs Cargo.toml

/root/repo/target/release/deps/libfig08-a5d6502bf90cee8f.rmeta: crates/bench/src/bin/fig08.rs Cargo.toml

crates/bench/src/bin/fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
