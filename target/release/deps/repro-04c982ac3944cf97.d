/root/repo/target/release/deps/repro-04c982ac3944cf97.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-04c982ac3944cf97: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
