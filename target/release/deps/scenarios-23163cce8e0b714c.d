/root/repo/target/release/deps/scenarios-23163cce8e0b714c.d: crates/scenarios/tests/scenarios.rs

/root/repo/target/release/deps/scenarios-23163cce8e0b714c: crates/scenarios/tests/scenarios.rs

crates/scenarios/tests/scenarios.rs:
