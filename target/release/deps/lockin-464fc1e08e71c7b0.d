/root/repo/target/release/deps/lockin-464fc1e08e71c7b0.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs

/root/repo/target/release/deps/liblockin-464fc1e08e71c7b0.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs

/root/repo/target/release/deps/liblockin-464fc1e08e71c7b0.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/clh.rs:
crates/core/src/condvar.rs:
crates/core/src/futex.rs:
crates/core/src/mcs.rs:
crates/core/src/meter.rs:
crates/core/src/mutex.rs:
crates/core/src/mutexee.rs:
crates/core/src/rapl.rs:
crates/core/src/raw.rs:
crates/core/src/rwlock.rs:
crates/core/src/spin.rs:
crates/core/src/spinlocks.rs:
