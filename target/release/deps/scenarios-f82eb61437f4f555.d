/root/repo/target/release/deps/scenarios-f82eb61437f4f555.d: crates/bench/src/bin/scenarios.rs

/root/repo/target/release/deps/scenarios-f82eb61437f4f555: crates/bench/src/bin/scenarios.rs

crates/bench/src/bin/scenarios.rs:
