/root/repo/target/release/deps/fig11-06971bfa7f239eba.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-06971bfa7f239eba: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
