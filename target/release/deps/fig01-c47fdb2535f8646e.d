/root/repo/target/release/deps/fig01-c47fdb2535f8646e.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/release/deps/libfig01-c47fdb2535f8646e.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
