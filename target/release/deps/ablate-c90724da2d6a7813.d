/root/repo/target/release/deps/ablate-c90724da2d6a7813.d: crates/bench/src/bin/ablate.rs

/root/repo/target/release/deps/ablate-c90724da2d6a7813: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
