/root/repo/target/release/deps/locks-c3f47b717f299c22.d: crates/locks-sim/tests/locks.rs

/root/repo/target/release/deps/locks-c3f47b717f299c22: crates/locks-sim/tests/locks.rs

crates/locks-sim/tests/locks.rs:
