/root/repo/target/release/deps/scenarios-a71b9576ade42557.d: crates/bench/src/bin/scenarios.rs Cargo.toml

/root/repo/target/release/deps/libscenarios-a71b9576ade42557.rmeta: crates/bench/src/bin/scenarios.rs Cargo.toml

crates/bench/src/bin/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
