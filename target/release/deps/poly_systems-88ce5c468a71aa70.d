/root/repo/target/release/deps/poly_systems-88ce5c468a71aa70.d: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs Cargo.toml

/root/repo/target/release/deps/libpoly_systems-88ce5c468a71aa70.rmeta: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs Cargo.toml

crates/systems/src/lib.rs:
crates/systems/src/models.rs:
crates/systems/src/script.rs:
crates/systems/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
