/root/repo/target/release/deps/poly_scenarios-147728f721d7b3a3.d: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs Cargo.toml

/root/repo/target/release/deps/libpoly_scenarios-147728f721d7b3a3.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs Cargo.toml

crates/scenarios/src/lib.rs:
crates/scenarios/src/registry.rs:
crates/scenarios/src/spec.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
