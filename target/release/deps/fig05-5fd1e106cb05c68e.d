/root/repo/target/release/deps/fig05-5fd1e106cb05c68e.d: crates/bench/src/bin/fig05.rs Cargo.toml

/root/repo/target/release/deps/libfig05-5fd1e106cb05c68e.rmeta: crates/bench/src/bin/fig05.rs Cargo.toml

crates/bench/src/bin/fig05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
