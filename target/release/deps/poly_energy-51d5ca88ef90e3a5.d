/root/repo/target/release/deps/poly_energy-51d5ca88ef90e3a5.d: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

/root/repo/target/release/deps/poly_energy-51d5ca88ef90e3a5: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

crates/energy/src/lib.rs:
crates/energy/src/activity.rs:
crates/energy/src/config.rs:
crates/energy/src/counters.rs:
crates/energy/src/model.rs:
crates/energy/src/shape.rs:
crates/energy/src/vf.rs:
