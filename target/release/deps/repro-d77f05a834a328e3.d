/root/repo/target/release/deps/repro-d77f05a834a328e3.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-d77f05a834a328e3: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
