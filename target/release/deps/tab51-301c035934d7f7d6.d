/root/repo/target/release/deps/tab51-301c035934d7f7d6.d: crates/bench/src/bin/tab51.rs

/root/repo/target/release/deps/tab51-301c035934d7f7d6: crates/bench/src/bin/tab51.rs

crates/bench/src/bin/tab51.rs:
