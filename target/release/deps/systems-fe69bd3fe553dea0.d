/root/repo/target/release/deps/systems-fe69bd3fe553dea0.d: crates/systems/tests/systems.rs Cargo.toml

/root/repo/target/release/deps/libsystems-fe69bd3fe553dea0.rmeta: crates/systems/tests/systems.rs Cargo.toml

crates/systems/tests/systems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
