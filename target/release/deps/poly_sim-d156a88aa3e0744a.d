/root/repo/target/release/deps/poly_sim-d156a88aa3e0744a.d: crates/sim/src/lib.rs crates/sim/src/builder.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/mem.rs crates/sim/src/ops.rs crates/sim/src/program.rs crates/sim/src/stats.rs Cargo.toml

/root/repo/target/release/deps/libpoly_sim-d156a88aa3e0744a.rmeta: crates/sim/src/lib.rs crates/sim/src/builder.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/mem.rs crates/sim/src/ops.rs crates/sim/src/program.rs crates/sim/src/stats.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/builder.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/mem.rs:
crates/sim/src/ops.rs:
crates/sim/src/program.rs:
crates/sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
