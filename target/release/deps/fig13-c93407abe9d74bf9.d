/root/repo/target/release/deps/fig13-c93407abe9d74bf9.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-c93407abe9d74bf9: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
