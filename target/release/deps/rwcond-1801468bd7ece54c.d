/root/repo/target/release/deps/rwcond-1801468bd7ece54c.d: crates/locks-sim/tests/rwcond.rs

/root/repo/target/release/deps/rwcond-1801468bd7ece54c: crates/locks-sim/tests/rwcond.rs

crates/locks-sim/tests/rwcond.rs:
