/root/repo/target/release/deps/proptest-59cd646028b980a8.d: crates/proptest-shim/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-59cd646028b980a8.rmeta: crates/proptest-shim/src/lib.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
