/root/repo/target/release/deps/fig01-dbcfeb1d313466ef.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/release/deps/libfig01-dbcfeb1d313466ef.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
