/root/repo/target/release/deps/poly_bench-5caeb845f88c4db9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpoly_bench-5caeb845f88c4db9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
