/root/repo/target/release/deps/ablate-9a4346b456f43b36.d: crates/bench/src/bin/ablate.rs Cargo.toml

/root/repo/target/release/deps/libablate-9a4346b456f43b36.rmeta: crates/bench/src/bin/ablate.rs Cargo.toml

crates/bench/src/bin/ablate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
