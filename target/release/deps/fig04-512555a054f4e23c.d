/root/repo/target/release/deps/fig04-512555a054f4e23c.d: crates/bench/src/bin/fig04.rs

/root/repo/target/release/deps/fig04-512555a054f4e23c: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
