/root/repo/target/release/deps/fig04-ac506719bac342f4.d: crates/bench/src/bin/fig04.rs Cargo.toml

/root/repo/target/release/deps/libfig04-ac506719bac342f4.rmeta: crates/bench/src/bin/fig04.rs Cargo.toml

crates/bench/src/bin/fig04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
