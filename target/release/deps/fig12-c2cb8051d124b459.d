/root/repo/target/release/deps/fig12-c2cb8051d124b459.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/release/deps/libfig12-c2cb8051d124b459.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
