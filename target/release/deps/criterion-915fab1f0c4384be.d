/root/repo/target/release/deps/criterion-915fab1f0c4384be.d: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/criterion-915fab1f0c4384be: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
