/root/repo/target/release/deps/fig05-445104a839753a4a.d: crates/bench/src/bin/fig05.rs Cargo.toml

/root/repo/target/release/deps/libfig05-445104a839753a4a.rmeta: crates/bench/src/bin/fig05.rs Cargo.toml

crates/bench/src/bin/fig05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
