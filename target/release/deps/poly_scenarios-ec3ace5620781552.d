/root/repo/target/release/deps/poly_scenarios-ec3ace5620781552.d: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

/root/repo/target/release/deps/poly_scenarios-ec3ace5620781552: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/registry.rs:
crates/scenarios/src/spec.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/synth.rs:
