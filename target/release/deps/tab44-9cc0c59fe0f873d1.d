/root/repo/target/release/deps/tab44-9cc0c59fe0f873d1.d: crates/bench/src/bin/tab44.rs Cargo.toml

/root/repo/target/release/deps/libtab44-9cc0c59fe0f873d1.rmeta: crates/bench/src/bin/tab44.rs Cargo.toml

crates/bench/src/bin/tab44.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
