/root/repo/target/release/deps/fig10-14e06694ee12af1d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-14e06694ee12af1d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
