/root/repo/target/release/deps/unlocking_energy-cddb14d2a4db6900.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libunlocking_energy-cddb14d2a4db6900.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
