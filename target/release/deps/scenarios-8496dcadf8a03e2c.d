/root/repo/target/release/deps/scenarios-8496dcadf8a03e2c.d: crates/scenarios/tests/scenarios.rs Cargo.toml

/root/repo/target/release/deps/libscenarios-8496dcadf8a03e2c.rmeta: crates/scenarios/tests/scenarios.rs Cargo.toml

crates/scenarios/tests/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
