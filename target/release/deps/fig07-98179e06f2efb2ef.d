/root/repo/target/release/deps/fig07-98179e06f2efb2ef.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-98179e06f2efb2ef: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
