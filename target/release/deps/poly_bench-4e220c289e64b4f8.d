/root/repo/target/release/deps/poly_bench-4e220c289e64b4f8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpoly_bench-4e220c289e64b4f8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
