/root/repo/target/release/deps/scenarios-5e3704e059d6a5d5.d: crates/bench/src/bin/scenarios.rs

/root/repo/target/release/deps/scenarios-5e3704e059d6a5d5: crates/bench/src/bin/scenarios.rs

crates/bench/src/bin/scenarios.rs:
