/root/repo/target/release/deps/poly_sched-85d8a2abf98217d9.d: crates/sched/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpoly_sched-85d8a2abf98217d9.rmeta: crates/sched/src/lib.rs Cargo.toml

crates/sched/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
