/root/repo/target/release/deps/fig12-46294ae47376dd56.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-46294ae47376dd56: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
