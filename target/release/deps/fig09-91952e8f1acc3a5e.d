/root/repo/target/release/deps/fig09-91952e8f1acc3a5e.d: crates/bench/src/bin/fig09.rs Cargo.toml

/root/repo/target/release/deps/libfig09-91952e8f1acc3a5e.rmeta: crates/bench/src/bin/fig09.rs Cargo.toml

crates/bench/src/bin/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
