/root/repo/target/release/deps/fig09-93a03cfdac5d89fb.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-93a03cfdac5d89fb: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
