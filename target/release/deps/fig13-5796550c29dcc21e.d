/root/repo/target/release/deps/fig13-5796550c29dcc21e.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-5796550c29dcc21e: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
