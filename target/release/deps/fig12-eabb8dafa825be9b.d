/root/repo/target/release/deps/fig12-eabb8dafa825be9b.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-eabb8dafa825be9b: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
