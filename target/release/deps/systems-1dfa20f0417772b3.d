/root/repo/target/release/deps/systems-1dfa20f0417772b3.d: crates/systems/tests/systems.rs

/root/repo/target/release/deps/systems-1dfa20f0417772b3: crates/systems/tests/systems.rs

crates/systems/tests/systems.rs:
