/root/repo/target/release/deps/fig03-cfd3d0884efd2f17.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-cfd3d0884efd2f17: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
