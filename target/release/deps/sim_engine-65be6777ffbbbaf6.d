/root/repo/target/release/deps/sim_engine-65be6777ffbbbaf6.d: crates/bench/benches/sim_engine.rs Cargo.toml

/root/repo/target/release/deps/libsim_engine-65be6777ffbbbaf6.rmeta: crates/bench/benches/sim_engine.rs Cargo.toml

crates/bench/benches/sim_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
