/root/repo/target/release/deps/integration-3e0973ecdf9c9e4c.d: tests/integration.rs

/root/repo/target/release/deps/integration-3e0973ecdf9c9e4c: tests/integration.rs

tests/integration.rs:
