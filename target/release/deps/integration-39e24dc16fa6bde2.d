/root/repo/target/release/deps/integration-39e24dc16fa6bde2.d: tests/integration.rs Cargo.toml

/root/repo/target/release/deps/libintegration-39e24dc16fa6bde2.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
