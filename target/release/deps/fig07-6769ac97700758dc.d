/root/repo/target/release/deps/fig07-6769ac97700758dc.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-6769ac97700758dc: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
