/root/repo/target/release/deps/poly_systems-9703ad8fa15a4cf2.d: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

/root/repo/target/release/deps/poly_systems-9703ad8fa15a4cf2: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

crates/systems/src/lib.rs:
crates/systems/src/models.rs:
crates/systems/src/script.rs:
crates/systems/src/workloads.rs:
