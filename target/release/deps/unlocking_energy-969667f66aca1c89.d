/root/repo/target/release/deps/unlocking_energy-969667f66aca1c89.d: src/lib.rs

/root/repo/target/release/deps/unlocking_energy-969667f66aca1c89: src/lib.rs

src/lib.rs:
