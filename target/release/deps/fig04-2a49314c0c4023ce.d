/root/repo/target/release/deps/fig04-2a49314c0c4023ce.d: crates/bench/src/bin/fig04.rs

/root/repo/target/release/deps/fig04-2a49314c0c4023ce: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
