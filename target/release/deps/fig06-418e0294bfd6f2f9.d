/root/repo/target/release/deps/fig06-418e0294bfd6f2f9.d: crates/bench/src/bin/fig06.rs Cargo.toml

/root/repo/target/release/deps/libfig06-418e0294bfd6f2f9.rmeta: crates/bench/src/bin/fig06.rs Cargo.toml

crates/bench/src/bin/fig06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
