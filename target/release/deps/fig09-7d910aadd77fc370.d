/root/repo/target/release/deps/fig09-7d910aadd77fc370.d: crates/bench/src/bin/fig09.rs Cargo.toml

/root/repo/target/release/deps/libfig09-7d910aadd77fc370.rmeta: crates/bench/src/bin/fig09.rs Cargo.toml

crates/bench/src/bin/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
