/root/repo/target/release/deps/fig01-ff811523e07187ae.d: crates/bench/src/bin/fig01.rs

/root/repo/target/release/deps/fig01-ff811523e07187ae: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
