/root/repo/target/release/deps/repro-409c9a49b9103325.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/release/deps/librepro-409c9a49b9103325.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
