/root/repo/target/release/deps/poly_futex-12f2bdc44f899e60.d: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs Cargo.toml

/root/repo/target/release/deps/libpoly_futex-12f2bdc44f899e60.rmeta: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs Cargo.toml

crates/futex/src/lib.rs:
crates/futex/src/config.rs:
crates/futex/src/stats.rs:
crates/futex/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
