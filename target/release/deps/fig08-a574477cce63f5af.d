/root/repo/target/release/deps/fig08-a574477cce63f5af.d: crates/bench/src/bin/fig08.rs Cargo.toml

/root/repo/target/release/deps/libfig08-a574477cce63f5af.rmeta: crates/bench/src/bin/fig08.rs Cargo.toml

crates/bench/src/bin/fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
