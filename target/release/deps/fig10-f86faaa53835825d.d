/root/repo/target/release/deps/fig10-f86faaa53835825d.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/release/deps/libfig10-f86faaa53835825d.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
