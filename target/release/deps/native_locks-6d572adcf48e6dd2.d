/root/repo/target/release/deps/native_locks-6d572adcf48e6dd2.d: tests/native_locks.rs Cargo.toml

/root/repo/target/release/deps/libnative_locks-6d572adcf48e6dd2.rmeta: tests/native_locks.rs Cargo.toml

tests/native_locks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
