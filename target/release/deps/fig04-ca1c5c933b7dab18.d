/root/repo/target/release/deps/fig04-ca1c5c933b7dab18.d: crates/bench/src/bin/fig04.rs Cargo.toml

/root/repo/target/release/deps/libfig04-ca1c5c933b7dab18.rmeta: crates/bench/src/bin/fig04.rs Cargo.toml

crates/bench/src/bin/fig04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
