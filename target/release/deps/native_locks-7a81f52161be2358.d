/root/repo/target/release/deps/native_locks-7a81f52161be2358.d: crates/bench/benches/native_locks.rs

/root/repo/target/release/deps/native_locks-7a81f52161be2358: crates/bench/benches/native_locks.rs

crates/bench/benches/native_locks.rs:
