/root/repo/target/release/deps/tab02-1203f15e8c223a9f.d: crates/bench/src/bin/tab02.rs

/root/repo/target/release/deps/tab02-1203f15e8c223a9f: crates/bench/src/bin/tab02.rs

crates/bench/src/bin/tab02.rs:
