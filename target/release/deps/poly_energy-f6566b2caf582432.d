/root/repo/target/release/deps/poly_energy-f6566b2caf582432.d: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

/root/repo/target/release/deps/libpoly_energy-f6566b2caf582432.rlib: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

/root/repo/target/release/deps/libpoly_energy-f6566b2caf582432.rmeta: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

crates/energy/src/lib.rs:
crates/energy/src/activity.rs:
crates/energy/src/config.rs:
crates/energy/src/counters.rs:
crates/energy/src/model.rs:
crates/energy/src/shape.rs:
crates/energy/src/vf.rs:
