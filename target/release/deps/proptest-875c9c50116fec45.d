/root/repo/target/release/deps/proptest-875c9c50116fec45.d: crates/proptest-shim/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-875c9c50116fec45.rmeta: crates/proptest-shim/src/lib.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
