/root/repo/target/release/deps/poly_bench-4548c63cc9bedf25.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpoly_bench-4548c63cc9bedf25.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpoly_bench-4548c63cc9bedf25.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
