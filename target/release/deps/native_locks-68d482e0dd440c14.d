/root/repo/target/release/deps/native_locks-68d482e0dd440c14.d: crates/bench/benches/native_locks.rs Cargo.toml

/root/repo/target/release/deps/libnative_locks-68d482e0dd440c14.rmeta: crates/bench/benches/native_locks.rs Cargo.toml

crates/bench/benches/native_locks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
