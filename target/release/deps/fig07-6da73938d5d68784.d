/root/repo/target/release/deps/fig07-6da73938d5d68784.d: crates/bench/src/bin/fig07.rs Cargo.toml

/root/repo/target/release/deps/libfig07-6da73938d5d68784.rmeta: crates/bench/src/bin/fig07.rs Cargo.toml

crates/bench/src/bin/fig07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
