/root/repo/target/release/deps/engine-d36c3a1489ff5517.d: crates/sim/tests/engine.rs

/root/repo/target/release/deps/engine-d36c3a1489ff5517: crates/sim/tests/engine.rs

crates/sim/tests/engine.rs:
