/root/repo/target/release/deps/criterion-a6887f590e740dde.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-a6887f590e740dde.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
