/root/repo/target/release/deps/fig01-7d5b8715a509eb24.d: crates/bench/src/bin/fig01.rs

/root/repo/target/release/deps/fig01-7d5b8715a509eb24: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
