/root/repo/target/release/deps/fig09-63b9657bd79d20a7.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-63b9657bd79d20a7: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
