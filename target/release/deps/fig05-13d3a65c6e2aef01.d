/root/repo/target/release/deps/fig05-13d3a65c6e2aef01.d: crates/bench/src/bin/fig05.rs

/root/repo/target/release/deps/fig05-13d3a65c6e2aef01: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
