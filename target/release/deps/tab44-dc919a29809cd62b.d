/root/repo/target/release/deps/tab44-dc919a29809cd62b.d: crates/bench/src/bin/tab44.rs

/root/repo/target/release/deps/tab44-dc919a29809cd62b: crates/bench/src/bin/tab44.rs

crates/bench/src/bin/tab44.rs:
