/root/repo/target/release/deps/poly_systems-3dc9697ccaa46a99.d: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs Cargo.toml

/root/repo/target/release/deps/libpoly_systems-3dc9697ccaa46a99.rmeta: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs Cargo.toml

crates/systems/src/lib.rs:
crates/systems/src/models.rs:
crates/systems/src/script.rs:
crates/systems/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
