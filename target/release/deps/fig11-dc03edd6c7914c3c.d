/root/repo/target/release/deps/fig11-dc03edd6c7914c3c.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/release/deps/libfig11-dc03edd6c7914c3c.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
