/root/repo/target/release/deps/sim_engine-e40279ab09a52c9f.d: crates/bench/benches/sim_engine.rs

/root/repo/target/release/deps/sim_engine-e40279ab09a52c9f: crates/bench/benches/sim_engine.rs

crates/bench/benches/sim_engine.rs:
