/root/repo/target/release/deps/scenarios-83fce4e9ef97e6d1.d: crates/bench/src/bin/scenarios.rs Cargo.toml

/root/repo/target/release/deps/libscenarios-83fce4e9ef97e6d1.rmeta: crates/bench/src/bin/scenarios.rs Cargo.toml

crates/bench/src/bin/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
