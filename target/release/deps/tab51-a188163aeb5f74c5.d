/root/repo/target/release/deps/tab51-a188163aeb5f74c5.d: crates/bench/src/bin/tab51.rs Cargo.toml

/root/repo/target/release/deps/libtab51-a188163aeb5f74c5.rmeta: crates/bench/src/bin/tab51.rs Cargo.toml

crates/bench/src/bin/tab51.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
