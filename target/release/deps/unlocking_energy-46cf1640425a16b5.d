/root/repo/target/release/deps/unlocking_energy-46cf1640425a16b5.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libunlocking_energy-46cf1640425a16b5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
