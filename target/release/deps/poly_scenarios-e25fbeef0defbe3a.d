/root/repo/target/release/deps/poly_scenarios-e25fbeef0defbe3a.d: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

/root/repo/target/release/deps/libpoly_scenarios-e25fbeef0defbe3a.rlib: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

/root/repo/target/release/deps/libpoly_scenarios-e25fbeef0defbe3a.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/registry.rs:
crates/scenarios/src/spec.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/synth.rs:
