/root/repo/target/release/deps/poly_sched-16d3bbbf4b2ae8e0.d: crates/sched/src/lib.rs

/root/repo/target/release/deps/poly_sched-16d3bbbf4b2ae8e0: crates/sched/src/lib.rs

crates/sched/src/lib.rs:
