/root/repo/target/release/deps/lockin-1ff62d01ef828cb1.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs

/root/repo/target/release/deps/lockin-1ff62d01ef828cb1: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/clh.rs:
crates/core/src/condvar.rs:
crates/core/src/futex.rs:
crates/core/src/mcs.rs:
crates/core/src/meter.rs:
crates/core/src/mutex.rs:
crates/core/src/mutexee.rs:
crates/core/src/rapl.rs:
crates/core/src/raw.rs:
crates/core/src/rwlock.rs:
crates/core/src/spin.rs:
crates/core/src/spinlocks.rs:
