/root/repo/target/release/deps/rand-f7c2c3126777fc4d.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs Cargo.toml

/root/repo/target/release/deps/librand-f7c2c3126777fc4d.rmeta: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs Cargo.toml

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/rngs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
