/root/repo/target/release/deps/native_locks-06047c0ee27800e1.d: tests/native_locks.rs

/root/repo/target/release/deps/native_locks-06047c0ee27800e1: tests/native_locks.rs

tests/native_locks.rs:
