/root/repo/target/release/deps/proptest-69a20befc06889d5.d: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/proptest-69a20befc06889d5: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
