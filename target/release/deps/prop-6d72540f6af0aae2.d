/root/repo/target/release/deps/prop-6d72540f6af0aae2.d: crates/sched/tests/prop.rs

/root/repo/target/release/deps/prop-6d72540f6af0aae2: crates/sched/tests/prop.rs

crates/sched/tests/prop.rs:
