/root/repo/target/release/deps/criterion-751c2bf06c81ed0b.d: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libcriterion-751c2bf06c81ed0b.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libcriterion-751c2bf06c81ed0b.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
