/root/repo/target/release/deps/fig03-128dae81459d9c59.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-128dae81459d9c59: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
