/root/repo/target/release/deps/locks-01bdb0e3072c1a64.d: crates/locks-sim/tests/locks.rs Cargo.toml

/root/repo/target/release/deps/liblocks-01bdb0e3072c1a64.rmeta: crates/locks-sim/tests/locks.rs Cargo.toml

crates/locks-sim/tests/locks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
