/root/repo/target/release/deps/fig02-9841369d6901328a.d: crates/bench/src/bin/fig02.rs Cargo.toml

/root/repo/target/release/deps/libfig02-9841369d6901328a.rmeta: crates/bench/src/bin/fig02.rs Cargo.toml

crates/bench/src/bin/fig02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
