/root/repo/target/release/deps/poly_locks_sim-5df5ea2a38893348.d: crates/locks-sim/src/lib.rs crates/locks-sim/src/algos/mod.rs crates/locks-sim/src/algos/clh.rs crates/locks-sim/src/algos/mcs.rs crates/locks-sim/src/algos/mutex.rs crates/locks-sim/src/algos/mutexee.rs crates/locks-sim/src/algos/tas.rs crates/locks-sim/src/algos/ticket.rs crates/locks-sim/src/algos/ttas.rs crates/locks-sim/src/condvar.rs crates/locks-sim/src/driver.rs crates/locks-sim/src/lock.rs crates/locks-sim/src/rwlock.rs crates/locks-sim/src/sm.rs crates/locks-sim/src/ss.rs crates/locks-sim/src/waiting.rs Cargo.toml

/root/repo/target/release/deps/libpoly_locks_sim-5df5ea2a38893348.rmeta: crates/locks-sim/src/lib.rs crates/locks-sim/src/algos/mod.rs crates/locks-sim/src/algos/clh.rs crates/locks-sim/src/algos/mcs.rs crates/locks-sim/src/algos/mutex.rs crates/locks-sim/src/algos/mutexee.rs crates/locks-sim/src/algos/tas.rs crates/locks-sim/src/algos/ticket.rs crates/locks-sim/src/algos/ttas.rs crates/locks-sim/src/condvar.rs crates/locks-sim/src/driver.rs crates/locks-sim/src/lock.rs crates/locks-sim/src/rwlock.rs crates/locks-sim/src/sm.rs crates/locks-sim/src/ss.rs crates/locks-sim/src/waiting.rs Cargo.toml

crates/locks-sim/src/lib.rs:
crates/locks-sim/src/algos/mod.rs:
crates/locks-sim/src/algos/clh.rs:
crates/locks-sim/src/algos/mcs.rs:
crates/locks-sim/src/algos/mutex.rs:
crates/locks-sim/src/algos/mutexee.rs:
crates/locks-sim/src/algos/tas.rs:
crates/locks-sim/src/algos/ticket.rs:
crates/locks-sim/src/algos/ttas.rs:
crates/locks-sim/src/condvar.rs:
crates/locks-sim/src/driver.rs:
crates/locks-sim/src/lock.rs:
crates/locks-sim/src/rwlock.rs:
crates/locks-sim/src/sm.rs:
crates/locks-sim/src/ss.rs:
crates/locks-sim/src/waiting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
