/root/repo/target/release/deps/engine-f2a3bf0df0aeea50.d: crates/sim/tests/engine.rs Cargo.toml

/root/repo/target/release/deps/libengine-f2a3bf0df0aeea50.rmeta: crates/sim/tests/engine.rs Cargo.toml

crates/sim/tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
