/root/repo/target/release/deps/proptest-b933130594feccf2.d: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/libproptest-b933130594feccf2.rlib: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/libproptest-b933130594feccf2.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
