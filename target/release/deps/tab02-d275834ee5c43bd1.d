/root/repo/target/release/deps/tab02-d275834ee5c43bd1.d: crates/bench/src/bin/tab02.rs Cargo.toml

/root/repo/target/release/deps/libtab02-d275834ee5c43bd1.rmeta: crates/bench/src/bin/tab02.rs Cargo.toml

crates/bench/src/bin/tab02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
