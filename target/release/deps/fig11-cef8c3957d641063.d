/root/repo/target/release/deps/fig11-cef8c3957d641063.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-cef8c3957d641063: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
