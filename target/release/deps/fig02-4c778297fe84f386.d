/root/repo/target/release/deps/fig02-4c778297fe84f386.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-4c778297fe84f386: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
