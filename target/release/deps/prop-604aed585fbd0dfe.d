/root/repo/target/release/deps/prop-604aed585fbd0dfe.d: crates/sched/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-604aed585fbd0dfe.rmeta: crates/sched/tests/prop.rs Cargo.toml

crates/sched/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
