/root/repo/target/release/deps/poly_systems-fd0770cdc9fbe1b9.d: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

/root/repo/target/release/deps/libpoly_systems-fd0770cdc9fbe1b9.rlib: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

/root/repo/target/release/deps/libpoly_systems-fd0770cdc9fbe1b9.rmeta: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

crates/systems/src/lib.rs:
crates/systems/src/models.rs:
crates/systems/src/script.rs:
crates/systems/src/workloads.rs:
