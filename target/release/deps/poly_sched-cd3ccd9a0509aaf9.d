/root/repo/target/release/deps/poly_sched-cd3ccd9a0509aaf9.d: crates/sched/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpoly_sched-cd3ccd9a0509aaf9.rmeta: crates/sched/src/lib.rs Cargo.toml

crates/sched/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
