/root/repo/target/release/deps/lockin-db38fe7ccf26c3b9.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs Cargo.toml

/root/repo/target/release/deps/liblockin-db38fe7ccf26c3b9.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/clh.rs:
crates/core/src/condvar.rs:
crates/core/src/futex.rs:
crates/core/src/mcs.rs:
crates/core/src/meter.rs:
crates/core/src/mutex.rs:
crates/core/src/mutexee.rs:
crates/core/src/rapl.rs:
crates/core/src/raw.rs:
crates/core/src/rwlock.rs:
crates/core/src/spin.rs:
crates/core/src/spinlocks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
