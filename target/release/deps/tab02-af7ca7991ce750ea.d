/root/repo/target/release/deps/tab02-af7ca7991ce750ea.d: crates/bench/src/bin/tab02.rs Cargo.toml

/root/repo/target/release/deps/libtab02-af7ca7991ce750ea.rmeta: crates/bench/src/bin/tab02.rs Cargo.toml

crates/bench/src/bin/tab02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
