/root/repo/target/release/deps/prop-90f21e219224c7d9.d: tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-90f21e219224c7d9.rmeta: tests/prop.rs Cargo.toml

tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
