/root/repo/target/release/examples/quickstart-884945a587e752c5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-884945a587e752c5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
