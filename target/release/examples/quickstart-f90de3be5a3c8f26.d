/root/repo/target/release/examples/quickstart-f90de3be5a3c8f26.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f90de3be5a3c8f26: examples/quickstart.rs

examples/quickstart.rs:
