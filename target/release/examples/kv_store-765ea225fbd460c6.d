/root/repo/target/release/examples/kv_store-765ea225fbd460c6.d: examples/kv_store.rs Cargo.toml

/root/repo/target/release/examples/libkv_store-765ea225fbd460c6.rmeta: examples/kv_store.rs Cargo.toml

examples/kv_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
