/root/repo/target/release/examples/energy_report-0a77cb29fb98dfbf.d: examples/energy_report.rs Cargo.toml

/root/repo/target/release/examples/libenergy_report-0a77cb29fb98dfbf.rmeta: examples/energy_report.rs Cargo.toml

examples/energy_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
