/root/repo/target/release/examples/tune_mutexee-3c8620c4a7a9fc61.d: examples/tune_mutexee.rs

/root/repo/target/release/examples/tune_mutexee-3c8620c4a7a9fc61: examples/tune_mutexee.rs

examples/tune_mutexee.rs:
