/root/repo/target/release/examples/sim_poly-5316a88171167136.d: examples/sim_poly.rs

/root/repo/target/release/examples/sim_poly-5316a88171167136: examples/sim_poly.rs

examples/sim_poly.rs:
