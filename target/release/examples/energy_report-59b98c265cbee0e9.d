/root/repo/target/release/examples/energy_report-59b98c265cbee0e9.d: examples/energy_report.rs

/root/repo/target/release/examples/energy_report-59b98c265cbee0e9: examples/energy_report.rs

examples/energy_report.rs:
