/root/repo/target/release/examples/kv_store-81d74c505150d008.d: examples/kv_store.rs

/root/repo/target/release/examples/kv_store-81d74c505150d008: examples/kv_store.rs

examples/kv_store.rs:
