/root/repo/target/release/examples/tune_mutexee-9abb7aa78a6b5af7.d: examples/tune_mutexee.rs Cargo.toml

/root/repo/target/release/examples/libtune_mutexee-9abb7aa78a6b5af7.rmeta: examples/tune_mutexee.rs Cargo.toml

examples/tune_mutexee.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
