/root/repo/target/release/examples/sim_poly-26d650422dd2d35f.d: examples/sim_poly.rs Cargo.toml

/root/repo/target/release/examples/libsim_poly-26d650422dd2d35f.rmeta: examples/sim_poly.rs Cargo.toml

examples/sim_poly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
