/root/repo/target/release/librand.rlib: /root/repo/crates/rand-shim/src/lib.rs /root/repo/crates/rand-shim/src/rngs.rs
