/root/repo/target/release/libproptest.rlib: /root/repo/crates/proptest-shim/src/lib.rs /root/repo/crates/rand-shim/src/lib.rs /root/repo/crates/rand-shim/src/rngs.rs
