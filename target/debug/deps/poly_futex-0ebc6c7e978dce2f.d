/root/repo/target/debug/deps/poly_futex-0ebc6c7e978dce2f.d: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

/root/repo/target/debug/deps/libpoly_futex-0ebc6c7e978dce2f.rmeta: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

crates/futex/src/lib.rs:
crates/futex/src/config.rs:
crates/futex/src/stats.rs:
crates/futex/src/table.rs:
