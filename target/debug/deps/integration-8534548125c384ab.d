/root/repo/target/debug/deps/integration-8534548125c384ab.d: tests/integration.rs

/root/repo/target/debug/deps/integration-8534548125c384ab: tests/integration.rs

tests/integration.rs:
