/root/repo/target/debug/deps/fig10-cd55ea0f708af47a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-cd55ea0f708af47a.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
