/root/repo/target/debug/deps/tab02-2d2f2f5085b40aa9.d: crates/bench/src/bin/tab02.rs

/root/repo/target/debug/deps/libtab02-2d2f2f5085b40aa9.rmeta: crates/bench/src/bin/tab02.rs

crates/bench/src/bin/tab02.rs:
