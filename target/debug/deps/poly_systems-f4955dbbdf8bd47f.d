/root/repo/target/debug/deps/poly_systems-f4955dbbdf8bd47f.d: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

/root/repo/target/debug/deps/libpoly_systems-f4955dbbdf8bd47f.rmeta: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

crates/systems/src/lib.rs:
crates/systems/src/models.rs:
crates/systems/src/script.rs:
crates/systems/src/workloads.rs:
