/root/repo/target/debug/deps/poly_energy-51bb7e8bd0d9027e.d: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

/root/repo/target/debug/deps/libpoly_energy-51bb7e8bd0d9027e.rmeta: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

crates/energy/src/lib.rs:
crates/energy/src/activity.rs:
crates/energy/src/config.rs:
crates/energy/src/counters.rs:
crates/energy/src/model.rs:
crates/energy/src/shape.rs:
crates/energy/src/vf.rs:
