/root/repo/target/debug/deps/unlocking_energy-240f73bb8cf699e4.d: src/lib.rs

/root/repo/target/debug/deps/libunlocking_energy-240f73bb8cf699e4.rlib: src/lib.rs

/root/repo/target/debug/deps/libunlocking_energy-240f73bb8cf699e4.rmeta: src/lib.rs

src/lib.rs:
