/root/repo/target/debug/deps/fig02-d81305534c22e8af.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/libfig02-d81305534c22e8af.rmeta: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
