/root/repo/target/debug/deps/tab51-361ea104fdd7bbf3.d: crates/bench/src/bin/tab51.rs

/root/repo/target/debug/deps/libtab51-361ea104fdd7bbf3.rmeta: crates/bench/src/bin/tab51.rs

crates/bench/src/bin/tab51.rs:
