/root/repo/target/debug/deps/proptest-20524be3fc632fac.d: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libproptest-20524be3fc632fac.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
