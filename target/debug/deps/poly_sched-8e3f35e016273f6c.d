/root/repo/target/debug/deps/poly_sched-8e3f35e016273f6c.d: crates/sched/src/lib.rs

/root/repo/target/debug/deps/libpoly_sched-8e3f35e016273f6c.rlib: crates/sched/src/lib.rs

/root/repo/target/debug/deps/libpoly_sched-8e3f35e016273f6c.rmeta: crates/sched/src/lib.rs

crates/sched/src/lib.rs:
