/root/repo/target/debug/deps/poly_locks_sim-bdf7332d1e288ff5.d: crates/locks-sim/src/lib.rs crates/locks-sim/src/algos/mod.rs crates/locks-sim/src/algos/clh.rs crates/locks-sim/src/algos/mcs.rs crates/locks-sim/src/algos/mutex.rs crates/locks-sim/src/algos/mutexee.rs crates/locks-sim/src/algos/tas.rs crates/locks-sim/src/algos/ticket.rs crates/locks-sim/src/algos/ttas.rs crates/locks-sim/src/condvar.rs crates/locks-sim/src/driver.rs crates/locks-sim/src/lock.rs crates/locks-sim/src/rwlock.rs crates/locks-sim/src/sm.rs crates/locks-sim/src/ss.rs crates/locks-sim/src/waiting.rs

/root/repo/target/debug/deps/libpoly_locks_sim-bdf7332d1e288ff5.rlib: crates/locks-sim/src/lib.rs crates/locks-sim/src/algos/mod.rs crates/locks-sim/src/algos/clh.rs crates/locks-sim/src/algos/mcs.rs crates/locks-sim/src/algos/mutex.rs crates/locks-sim/src/algos/mutexee.rs crates/locks-sim/src/algos/tas.rs crates/locks-sim/src/algos/ticket.rs crates/locks-sim/src/algos/ttas.rs crates/locks-sim/src/condvar.rs crates/locks-sim/src/driver.rs crates/locks-sim/src/lock.rs crates/locks-sim/src/rwlock.rs crates/locks-sim/src/sm.rs crates/locks-sim/src/ss.rs crates/locks-sim/src/waiting.rs

/root/repo/target/debug/deps/libpoly_locks_sim-bdf7332d1e288ff5.rmeta: crates/locks-sim/src/lib.rs crates/locks-sim/src/algos/mod.rs crates/locks-sim/src/algos/clh.rs crates/locks-sim/src/algos/mcs.rs crates/locks-sim/src/algos/mutex.rs crates/locks-sim/src/algos/mutexee.rs crates/locks-sim/src/algos/tas.rs crates/locks-sim/src/algos/ticket.rs crates/locks-sim/src/algos/ttas.rs crates/locks-sim/src/condvar.rs crates/locks-sim/src/driver.rs crates/locks-sim/src/lock.rs crates/locks-sim/src/rwlock.rs crates/locks-sim/src/sm.rs crates/locks-sim/src/ss.rs crates/locks-sim/src/waiting.rs

crates/locks-sim/src/lib.rs:
crates/locks-sim/src/algos/mod.rs:
crates/locks-sim/src/algos/clh.rs:
crates/locks-sim/src/algos/mcs.rs:
crates/locks-sim/src/algos/mutex.rs:
crates/locks-sim/src/algos/mutexee.rs:
crates/locks-sim/src/algos/tas.rs:
crates/locks-sim/src/algos/ticket.rs:
crates/locks-sim/src/algos/ttas.rs:
crates/locks-sim/src/condvar.rs:
crates/locks-sim/src/driver.rs:
crates/locks-sim/src/lock.rs:
crates/locks-sim/src/rwlock.rs:
crates/locks-sim/src/sm.rs:
crates/locks-sim/src/ss.rs:
crates/locks-sim/src/waiting.rs:
