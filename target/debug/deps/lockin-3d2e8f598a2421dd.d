/root/repo/target/debug/deps/lockin-3d2e8f598a2421dd.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs

/root/repo/target/debug/deps/liblockin-3d2e8f598a2421dd.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs

/root/repo/target/debug/deps/liblockin-3d2e8f598a2421dd.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/clh.rs crates/core/src/condvar.rs crates/core/src/futex.rs crates/core/src/mcs.rs crates/core/src/meter.rs crates/core/src/mutex.rs crates/core/src/mutexee.rs crates/core/src/rapl.rs crates/core/src/raw.rs crates/core/src/rwlock.rs crates/core/src/spin.rs crates/core/src/spinlocks.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/clh.rs:
crates/core/src/condvar.rs:
crates/core/src/futex.rs:
crates/core/src/mcs.rs:
crates/core/src/meter.rs:
crates/core/src/mutex.rs:
crates/core/src/mutexee.rs:
crates/core/src/rapl.rs:
crates/core/src/raw.rs:
crates/core/src/rwlock.rs:
crates/core/src/spin.rs:
crates/core/src/spinlocks.rs:
