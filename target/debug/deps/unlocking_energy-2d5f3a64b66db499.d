/root/repo/target/debug/deps/unlocking_energy-2d5f3a64b66db499.d: src/lib.rs

/root/repo/target/debug/deps/unlocking_energy-2d5f3a64b66db499: src/lib.rs

src/lib.rs:
