/root/repo/target/debug/deps/fig11-7cb5279fe8062073.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-7cb5279fe8062073.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
