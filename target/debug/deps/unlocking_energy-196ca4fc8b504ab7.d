/root/repo/target/debug/deps/unlocking_energy-196ca4fc8b504ab7.d: src/lib.rs

/root/repo/target/debug/deps/libunlocking_energy-196ca4fc8b504ab7.rmeta: src/lib.rs

src/lib.rs:
