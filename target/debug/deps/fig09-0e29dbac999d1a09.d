/root/repo/target/debug/deps/fig09-0e29dbac999d1a09.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/libfig09-0e29dbac999d1a09.rmeta: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
