/root/repo/target/debug/deps/native_locks-a4b3f918a45895a9.d: crates/bench/benches/native_locks.rs

/root/repo/target/debug/deps/libnative_locks-a4b3f918a45895a9.rmeta: crates/bench/benches/native_locks.rs

crates/bench/benches/native_locks.rs:
