/root/repo/target/debug/deps/rand-d986a8f9f1483203.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

/root/repo/target/debug/deps/rand-d986a8f9f1483203: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/rngs.rs:
