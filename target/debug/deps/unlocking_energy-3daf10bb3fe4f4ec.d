/root/repo/target/debug/deps/unlocking_energy-3daf10bb3fe4f4ec.d: src/lib.rs

/root/repo/target/debug/deps/libunlocking_energy-3daf10bb3fe4f4ec.rmeta: src/lib.rs

src/lib.rs:
