/root/repo/target/debug/deps/rwcond-a95ca64868d16d2e.d: crates/locks-sim/tests/rwcond.rs

/root/repo/target/debug/deps/librwcond-a95ca64868d16d2e.rmeta: crates/locks-sim/tests/rwcond.rs

crates/locks-sim/tests/rwcond.rs:
