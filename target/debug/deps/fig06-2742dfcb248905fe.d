/root/repo/target/debug/deps/fig06-2742dfcb248905fe.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/libfig06-2742dfcb248905fe.rmeta: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
