/root/repo/target/debug/deps/poly_scenarios-c72d10403f655c6f.d: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

/root/repo/target/debug/deps/poly_scenarios-c72d10403f655c6f: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/registry.rs:
crates/scenarios/src/spec.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/synth.rs:
