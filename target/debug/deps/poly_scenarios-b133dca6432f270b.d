/root/repo/target/debug/deps/poly_scenarios-b133dca6432f270b.d: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

/root/repo/target/debug/deps/libpoly_scenarios-b133dca6432f270b.rlib: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

/root/repo/target/debug/deps/libpoly_scenarios-b133dca6432f270b.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/registry.rs:
crates/scenarios/src/spec.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/synth.rs:
