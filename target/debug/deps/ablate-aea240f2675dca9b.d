/root/repo/target/debug/deps/ablate-aea240f2675dca9b.d: crates/bench/src/bin/ablate.rs

/root/repo/target/debug/deps/libablate-aea240f2675dca9b.rmeta: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
