/root/repo/target/debug/deps/poly_sched-8a5e070e275bd4fa.d: crates/sched/src/lib.rs

/root/repo/target/debug/deps/libpoly_sched-8a5e070e275bd4fa.rmeta: crates/sched/src/lib.rs

crates/sched/src/lib.rs:
