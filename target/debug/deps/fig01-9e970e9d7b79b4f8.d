/root/repo/target/debug/deps/fig01-9e970e9d7b79b4f8.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/libfig01-9e970e9d7b79b4f8.rmeta: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
