/root/repo/target/debug/deps/poly_systems-822114c33392ac31.d: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

/root/repo/target/debug/deps/libpoly_systems-822114c33392ac31.rmeta: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

crates/systems/src/lib.rs:
crates/systems/src/models.rs:
crates/systems/src/script.rs:
crates/systems/src/workloads.rs:
