/root/repo/target/debug/deps/fig12-e6031a9513eebbae.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/libfig12-e6031a9513eebbae.rmeta: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
