/root/repo/target/debug/deps/prop-af276e877a857f9e.d: tests/prop.rs

/root/repo/target/debug/deps/prop-af276e877a857f9e: tests/prop.rs

tests/prop.rs:
