/root/repo/target/debug/deps/locks-e70be87320992935.d: crates/locks-sim/tests/locks.rs

/root/repo/target/debug/deps/liblocks-e70be87320992935.rmeta: crates/locks-sim/tests/locks.rs

crates/locks-sim/tests/locks.rs:
