/root/repo/target/debug/deps/tab51-9c6351d2252b468c.d: crates/bench/src/bin/tab51.rs

/root/repo/target/debug/deps/libtab51-9c6351d2252b468c.rmeta: crates/bench/src/bin/tab51.rs

crates/bench/src/bin/tab51.rs:
