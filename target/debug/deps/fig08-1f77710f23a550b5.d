/root/repo/target/debug/deps/fig08-1f77710f23a550b5.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/libfig08-1f77710f23a550b5.rmeta: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
