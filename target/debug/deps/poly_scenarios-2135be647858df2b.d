/root/repo/target/debug/deps/poly_scenarios-2135be647858df2b.d: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

/root/repo/target/debug/deps/libpoly_scenarios-2135be647858df2b.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/registry.rs:
crates/scenarios/src/spec.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/synth.rs:
