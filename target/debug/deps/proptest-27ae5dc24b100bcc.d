/root/repo/target/debug/deps/proptest-27ae5dc24b100bcc.d: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libproptest-27ae5dc24b100bcc.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
