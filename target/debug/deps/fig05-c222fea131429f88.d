/root/repo/target/debug/deps/fig05-c222fea131429f88.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/libfig05-c222fea131429f88.rmeta: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
