/root/repo/target/debug/deps/tab44-ab6cc6fee1d9d9be.d: crates/bench/src/bin/tab44.rs

/root/repo/target/debug/deps/libtab44-ab6cc6fee1d9d9be.rmeta: crates/bench/src/bin/tab44.rs

crates/bench/src/bin/tab44.rs:
