/root/repo/target/debug/deps/sim_engine-a391b1841abab0b0.d: crates/bench/benches/sim_engine.rs

/root/repo/target/debug/deps/libsim_engine-a391b1841abab0b0.rmeta: crates/bench/benches/sim_engine.rs

crates/bench/benches/sim_engine.rs:
