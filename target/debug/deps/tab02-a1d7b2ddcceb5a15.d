/root/repo/target/debug/deps/tab02-a1d7b2ddcceb5a15.d: crates/bench/src/bin/tab02.rs

/root/repo/target/debug/deps/libtab02-a1d7b2ddcceb5a15.rmeta: crates/bench/src/bin/tab02.rs

crates/bench/src/bin/tab02.rs:
