/root/repo/target/debug/deps/fig03-d652a709bbc9b3a0.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/libfig03-d652a709bbc9b3a0.rmeta: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
