/root/repo/target/debug/deps/fig13-b278c64e8cf4a4f9.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/libfig13-b278c64e8cf4a4f9.rmeta: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
