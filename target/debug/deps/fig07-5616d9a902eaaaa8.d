/root/repo/target/debug/deps/fig07-5616d9a902eaaaa8.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/libfig07-5616d9a902eaaaa8.rmeta: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
