/root/repo/target/debug/deps/fig07-992ca29c51667a2e.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/libfig07-992ca29c51667a2e.rmeta: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
