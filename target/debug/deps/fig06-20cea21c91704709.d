/root/repo/target/debug/deps/fig06-20cea21c91704709.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/libfig06-20cea21c91704709.rmeta: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
