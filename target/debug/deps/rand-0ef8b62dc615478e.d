/root/repo/target/debug/deps/rand-0ef8b62dc615478e.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

/root/repo/target/debug/deps/librand-0ef8b62dc615478e.rmeta: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/rngs.rs:
