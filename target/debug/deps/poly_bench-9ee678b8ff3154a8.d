/root/repo/target/debug/deps/poly_bench-9ee678b8ff3154a8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpoly_bench-9ee678b8ff3154a8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
