/root/repo/target/debug/deps/repro-08a7e7fb7ececa63.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-08a7e7fb7ececa63.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
