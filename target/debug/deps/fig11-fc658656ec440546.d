/root/repo/target/debug/deps/fig11-fc658656ec440546.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-fc658656ec440546.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
