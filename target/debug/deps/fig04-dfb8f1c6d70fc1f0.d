/root/repo/target/debug/deps/fig04-dfb8f1c6d70fc1f0.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/libfig04-dfb8f1c6d70fc1f0.rmeta: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
