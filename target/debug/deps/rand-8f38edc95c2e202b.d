/root/repo/target/debug/deps/rand-8f38edc95c2e202b.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

/root/repo/target/debug/deps/librand-8f38edc95c2e202b.rmeta: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/rngs.rs:
