/root/repo/target/debug/deps/scenarios-d5cd6b18fc1bff2f.d: crates/bench/src/bin/scenarios.rs

/root/repo/target/debug/deps/libscenarios-d5cd6b18fc1bff2f.rmeta: crates/bench/src/bin/scenarios.rs

crates/bench/src/bin/scenarios.rs:
