/root/repo/target/debug/deps/scenarios-310f0c3a2d42119e.d: crates/bench/src/bin/scenarios.rs

/root/repo/target/debug/deps/libscenarios-310f0c3a2d42119e.rmeta: crates/bench/src/bin/scenarios.rs

crates/bench/src/bin/scenarios.rs:
