/root/repo/target/debug/deps/systems-64ee76800b9e52fe.d: crates/systems/tests/systems.rs

/root/repo/target/debug/deps/libsystems-64ee76800b9e52fe.rmeta: crates/systems/tests/systems.rs

crates/systems/tests/systems.rs:
