/root/repo/target/debug/deps/fig13-5636ffa0bca6ce95.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/libfig13-5636ffa0bca6ce95.rmeta: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
