/root/repo/target/debug/deps/poly_sched-5ee6a3fbb40914c4.d: crates/sched/src/lib.rs

/root/repo/target/debug/deps/libpoly_sched-5ee6a3fbb40914c4.rmeta: crates/sched/src/lib.rs

crates/sched/src/lib.rs:
