/root/repo/target/debug/deps/prop-ae364022bbd68280.d: crates/sched/tests/prop.rs

/root/repo/target/debug/deps/libprop-ae364022bbd68280.rmeta: crates/sched/tests/prop.rs

crates/sched/tests/prop.rs:
