/root/repo/target/debug/deps/poly_sim-c6369265f50f3717.d: crates/sim/src/lib.rs crates/sim/src/builder.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/mem.rs crates/sim/src/ops.rs crates/sim/src/program.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/libpoly_sim-c6369265f50f3717.rlib: crates/sim/src/lib.rs crates/sim/src/builder.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/mem.rs crates/sim/src/ops.rs crates/sim/src/program.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/libpoly_sim-c6369265f50f3717.rmeta: crates/sim/src/lib.rs crates/sim/src/builder.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/mem.rs crates/sim/src/ops.rs crates/sim/src/program.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/builder.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/mem.rs:
crates/sim/src/ops.rs:
crates/sim/src/program.rs:
crates/sim/src/stats.rs:
