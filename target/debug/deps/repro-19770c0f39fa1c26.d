/root/repo/target/debug/deps/repro-19770c0f39fa1c26.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-19770c0f39fa1c26.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
