/root/repo/target/debug/deps/scenarios-689a2b6590b8ae82.d: crates/scenarios/tests/scenarios.rs

/root/repo/target/debug/deps/libscenarios-689a2b6590b8ae82.rmeta: crates/scenarios/tests/scenarios.rs

crates/scenarios/tests/scenarios.rs:
