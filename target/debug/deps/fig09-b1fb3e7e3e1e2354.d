/root/repo/target/debug/deps/fig09-b1fb3e7e3e1e2354.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/libfig09-b1fb3e7e3e1e2354.rmeta: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
