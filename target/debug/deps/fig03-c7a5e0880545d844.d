/root/repo/target/debug/deps/fig03-c7a5e0880545d844.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/libfig03-c7a5e0880545d844.rmeta: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
