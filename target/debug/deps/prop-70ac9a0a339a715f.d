/root/repo/target/debug/deps/prop-70ac9a0a339a715f.d: crates/futex/tests/prop.rs

/root/repo/target/debug/deps/libprop-70ac9a0a339a715f.rmeta: crates/futex/tests/prop.rs

crates/futex/tests/prop.rs:
