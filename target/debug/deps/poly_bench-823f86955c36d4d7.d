/root/repo/target/debug/deps/poly_bench-823f86955c36d4d7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpoly_bench-823f86955c36d4d7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpoly_bench-823f86955c36d4d7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
