/root/repo/target/debug/deps/tab44-0cde24f0b559d2a6.d: crates/bench/src/bin/tab44.rs

/root/repo/target/debug/deps/libtab44-0cde24f0b559d2a6.rmeta: crates/bench/src/bin/tab44.rs

crates/bench/src/bin/tab44.rs:
