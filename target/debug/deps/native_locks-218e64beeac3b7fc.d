/root/repo/target/debug/deps/native_locks-218e64beeac3b7fc.d: tests/native_locks.rs

/root/repo/target/debug/deps/libnative_locks-218e64beeac3b7fc.rmeta: tests/native_locks.rs

tests/native_locks.rs:
