/root/repo/target/debug/deps/poly_futex-07c44399b8e36c93.d: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

/root/repo/target/debug/deps/libpoly_futex-07c44399b8e36c93.rmeta: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

crates/futex/src/lib.rs:
crates/futex/src/config.rs:
crates/futex/src/stats.rs:
crates/futex/src/table.rs:
