/root/repo/target/debug/deps/proptest-8d099cc123baf1fd.d: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libproptest-8d099cc123baf1fd.rlib: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libproptest-8d099cc123baf1fd.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
