/root/repo/target/debug/deps/poly_futex-b04dc05d53f08179.d: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

/root/repo/target/debug/deps/libpoly_futex-b04dc05d53f08179.rlib: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

/root/repo/target/debug/deps/libpoly_futex-b04dc05d53f08179.rmeta: crates/futex/src/lib.rs crates/futex/src/config.rs crates/futex/src/stats.rs crates/futex/src/table.rs

crates/futex/src/lib.rs:
crates/futex/src/config.rs:
crates/futex/src/stats.rs:
crates/futex/src/table.rs:
