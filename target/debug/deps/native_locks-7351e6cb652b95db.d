/root/repo/target/debug/deps/native_locks-7351e6cb652b95db.d: tests/native_locks.rs

/root/repo/target/debug/deps/native_locks-7351e6cb652b95db: tests/native_locks.rs

tests/native_locks.rs:
