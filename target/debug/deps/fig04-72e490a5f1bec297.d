/root/repo/target/debug/deps/fig04-72e490a5f1bec297.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/libfig04-72e490a5f1bec297.rmeta: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
