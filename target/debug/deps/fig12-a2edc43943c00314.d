/root/repo/target/debug/deps/fig12-a2edc43943c00314.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/libfig12-a2edc43943c00314.rmeta: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
