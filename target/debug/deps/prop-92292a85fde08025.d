/root/repo/target/debug/deps/prop-92292a85fde08025.d: tests/prop.rs

/root/repo/target/debug/deps/libprop-92292a85fde08025.rmeta: tests/prop.rs

tests/prop.rs:
