/root/repo/target/debug/deps/fig02-71d4e4d2f5974a55.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/libfig02-71d4e4d2f5974a55.rmeta: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
