/root/repo/target/debug/deps/poly_systems-09d48966c7299b1f.d: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

/root/repo/target/debug/deps/libpoly_systems-09d48966c7299b1f.rlib: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

/root/repo/target/debug/deps/libpoly_systems-09d48966c7299b1f.rmeta: crates/systems/src/lib.rs crates/systems/src/models.rs crates/systems/src/script.rs crates/systems/src/workloads.rs

crates/systems/src/lib.rs:
crates/systems/src/models.rs:
crates/systems/src/script.rs:
crates/systems/src/workloads.rs:
