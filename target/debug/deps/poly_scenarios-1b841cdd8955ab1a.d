/root/repo/target/debug/deps/poly_scenarios-1b841cdd8955ab1a.d: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

/root/repo/target/debug/deps/libpoly_scenarios-1b841cdd8955ab1a.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/registry.rs crates/scenarios/src/spec.rs crates/scenarios/src/sweep.rs crates/scenarios/src/synth.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/registry.rs:
crates/scenarios/src/spec.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/synth.rs:
