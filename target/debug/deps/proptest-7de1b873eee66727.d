/root/repo/target/debug/deps/proptest-7de1b873eee66727.d: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/proptest-7de1b873eee66727: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
