/root/repo/target/debug/deps/poly_bench-98b573d1a1fc4f67.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpoly_bench-98b573d1a1fc4f67.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
