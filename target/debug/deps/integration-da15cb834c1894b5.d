/root/repo/target/debug/deps/integration-da15cb834c1894b5.d: tests/integration.rs

/root/repo/target/debug/deps/libintegration-da15cb834c1894b5.rmeta: tests/integration.rs

tests/integration.rs:
