/root/repo/target/debug/deps/rand-d73b278d5585fb01.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

/root/repo/target/debug/deps/librand-d73b278d5585fb01.rlib: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

/root/repo/target/debug/deps/librand-d73b278d5585fb01.rmeta: crates/rand-shim/src/lib.rs crates/rand-shim/src/rngs.rs

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/rngs.rs:
