/root/repo/target/debug/deps/poly_energy-47a0f02befef71a1.d: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

/root/repo/target/debug/deps/libpoly_energy-47a0f02befef71a1.rlib: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

/root/repo/target/debug/deps/libpoly_energy-47a0f02befef71a1.rmeta: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

crates/energy/src/lib.rs:
crates/energy/src/activity.rs:
crates/energy/src/config.rs:
crates/energy/src/counters.rs:
crates/energy/src/model.rs:
crates/energy/src/shape.rs:
crates/energy/src/vf.rs:
