/root/repo/target/debug/deps/fig08-c2e47d09240ff209.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/libfig08-c2e47d09240ff209.rmeta: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
