/root/repo/target/debug/deps/fig01-4478a5259df4944f.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/libfig01-4478a5259df4944f.rmeta: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
