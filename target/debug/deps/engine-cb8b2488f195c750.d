/root/repo/target/debug/deps/engine-cb8b2488f195c750.d: crates/sim/tests/engine.rs

/root/repo/target/debug/deps/libengine-cb8b2488f195c750.rmeta: crates/sim/tests/engine.rs

crates/sim/tests/engine.rs:
