/root/repo/target/debug/deps/ablate-44b84f454fe532a9.d: crates/bench/src/bin/ablate.rs

/root/repo/target/debug/deps/libablate-44b84f454fe532a9.rmeta: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
