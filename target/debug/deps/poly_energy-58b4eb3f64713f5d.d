/root/repo/target/debug/deps/poly_energy-58b4eb3f64713f5d.d: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

/root/repo/target/debug/deps/libpoly_energy-58b4eb3f64713f5d.rmeta: crates/energy/src/lib.rs crates/energy/src/activity.rs crates/energy/src/config.rs crates/energy/src/counters.rs crates/energy/src/model.rs crates/energy/src/shape.rs crates/energy/src/vf.rs

crates/energy/src/lib.rs:
crates/energy/src/activity.rs:
crates/energy/src/config.rs:
crates/energy/src/counters.rs:
crates/energy/src/model.rs:
crates/energy/src/shape.rs:
crates/energy/src/vf.rs:
