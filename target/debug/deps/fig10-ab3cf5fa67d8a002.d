/root/repo/target/debug/deps/fig10-ab3cf5fa67d8a002.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-ab3cf5fa67d8a002.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
