/root/repo/target/debug/deps/fig05-a36921af45cebdb6.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/libfig05-a36921af45cebdb6.rmeta: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
