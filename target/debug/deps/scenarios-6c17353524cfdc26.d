/root/repo/target/debug/deps/scenarios-6c17353524cfdc26.d: crates/scenarios/tests/scenarios.rs

/root/repo/target/debug/deps/scenarios-6c17353524cfdc26: crates/scenarios/tests/scenarios.rs

crates/scenarios/tests/scenarios.rs:
