/root/repo/target/debug/examples/quickstart-2ac75947be2f0b63.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2ac75947be2f0b63: examples/quickstart.rs

examples/quickstart.rs:
