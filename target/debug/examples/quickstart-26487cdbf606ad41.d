/root/repo/target/debug/examples/quickstart-26487cdbf606ad41.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-26487cdbf606ad41.rmeta: examples/quickstart.rs

examples/quickstart.rs:
