/root/repo/target/debug/examples/sim_poly-15422ea4ae988a98.d: examples/sim_poly.rs

/root/repo/target/debug/examples/sim_poly-15422ea4ae988a98: examples/sim_poly.rs

examples/sim_poly.rs:
