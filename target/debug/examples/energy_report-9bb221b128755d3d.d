/root/repo/target/debug/examples/energy_report-9bb221b128755d3d.d: examples/energy_report.rs

/root/repo/target/debug/examples/energy_report-9bb221b128755d3d: examples/energy_report.rs

examples/energy_report.rs:
