/root/repo/target/debug/examples/sim_poly-0e2f8291801b3a32.d: examples/sim_poly.rs

/root/repo/target/debug/examples/libsim_poly-0e2f8291801b3a32.rmeta: examples/sim_poly.rs

examples/sim_poly.rs:
