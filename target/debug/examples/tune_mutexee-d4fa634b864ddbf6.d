/root/repo/target/debug/examples/tune_mutexee-d4fa634b864ddbf6.d: examples/tune_mutexee.rs

/root/repo/target/debug/examples/libtune_mutexee-d4fa634b864ddbf6.rmeta: examples/tune_mutexee.rs

examples/tune_mutexee.rs:
