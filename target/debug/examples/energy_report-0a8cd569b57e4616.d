/root/repo/target/debug/examples/energy_report-0a8cd569b57e4616.d: examples/energy_report.rs

/root/repo/target/debug/examples/libenergy_report-0a8cd569b57e4616.rmeta: examples/energy_report.rs

examples/energy_report.rs:
