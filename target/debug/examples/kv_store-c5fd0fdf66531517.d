/root/repo/target/debug/examples/kv_store-c5fd0fdf66531517.d: examples/kv_store.rs

/root/repo/target/debug/examples/libkv_store-c5fd0fdf66531517.rmeta: examples/kv_store.rs

examples/kv_store.rs:
