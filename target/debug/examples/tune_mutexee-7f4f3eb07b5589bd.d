/root/repo/target/debug/examples/tune_mutexee-7f4f3eb07b5589bd.d: examples/tune_mutexee.rs

/root/repo/target/debug/examples/tune_mutexee-7f4f3eb07b5589bd: examples/tune_mutexee.rs

examples/tune_mutexee.rs:
