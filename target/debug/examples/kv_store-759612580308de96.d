/root/repo/target/debug/examples/kv_store-759612580308de96.d: examples/kv_store.rs

/root/repo/target/debug/examples/kv_store-759612580308de96: examples/kv_store.rs

examples/kv_store.rs:
