//! A small sharded key-value store built on `lockin` locks, exercised with
//! a zipf-skewed workload — the kind of service the paper's §6 systems are.
//! The same workload shape then runs on the simulated Xeon through the
//! scenario API, comparing lock algorithms with energy attached.

use std::collections::HashMap;

use lockin::{Lock, Mutexee, RwLock};
use unlocking_energy::poly_locks_sim::LockKind;
use unlocking_energy::poly_scenarios::{cross, Registry, SweepRunner};

/// A sharded map: point lookups/updates take a shard mutex; scans take a
/// store-wide rwlock in read mode while a (rare) compaction writes.
struct KvStore {
    shards: Vec<Lock<HashMap<u64, u64>, Mutexee>>,
    epoch: RwLock<u64, Mutexee>,
}

impl KvStore {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| Lock::new(HashMap::new())).collect(),
            epoch: RwLock::new(0),
        }
    }

    fn put(&self, k: u64, v: u64) {
        let _e = self.epoch.read();
        let shard = (k as usize) % self.shards.len();
        self.shards[shard].lock().insert(k, v);
    }

    fn get(&self, k: u64) -> Option<u64> {
        let _e = self.epoch.read();
        let shard = (k as usize) % self.shards.len();
        self.shards[shard].lock().get(&k).copied()
    }

    fn bump_epoch(&self) {
        *self.epoch.write() += 1;
    }
}

fn main() {
    let store = KvStore::new(16);
    let threads = 4;
    let ops: u64 = 100_000;
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = &store;
            s.spawn(move || {
                // Cheap zipf-ish skew: quadratic rejection toward small keys.
                let mut x = 88_172_645_463_325_252u64 ^ (t + 1);
                for i in 0..ops {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = (x % 1000) * (x % 97) % 1000;
                    if x % 10 < 3 {
                        store.put(key, i);
                    } else {
                        let _ = store.get(key);
                    }
                    if x.is_multiple_of(100_000) {
                        store.bump_epoch();
                    }
                }
            });
        }
    });
    let dt = start.elapsed();
    let total = threads * ops;
    println!(
        "{} ops across {} threads in {:.1} ms  ({:.2} Mops/s)",
        total,
        threads,
        dt.as_secs_f64() * 1e3,
        total as f64 / dt.as_secs_f64() / 1e6
    );
    println!("final epoch: {}", *store.epoch.read());

    // The same zipf-sharded-KV shape as a declarative scenario: the
    // registry's `kv-hot-zipf` entry, swept over three lock algorithms on
    // the simulated Xeon, with energy per operation measured.
    println!("\nsimulated Xeon, kv-hot-zipf scenario, 16 threads:");
    let base = Registry::builtin()
        .get("kv-hot-zipf")
        .expect("kv-hot-zipf is built in")
        .spec
        .clone()
        .with_duration(8_000_000, 800_000);
    let cells = cross(&[base], &[LockKind::Mutex, LockKind::Ticket, LockKind::Mutexee], &[16], 42);
    for r in SweepRunner::new().run(&cells) {
        println!(
            "{:>8}: {:6.2} Mops/s  {:6.1} W  {:7.2} uJ/op  p99 acquire {} cycles",
            r.lock.label(),
            r.throughput / 1e6,
            r.avg_power_w,
            r.epo_uj,
            r.p99_acq_cycles
        );
    }
}
