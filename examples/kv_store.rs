//! The `poly-store` serving subsystem end to end: the same declarative
//! `kv` mix drives (1) the real sharded store on this host — native lock
//! acquisitions, per-shard stats, modeled Xeon energy — and (2) the
//! simulated Xeon through the scenario API, so lock algorithms can be
//! compared with energy attached on both sides.

use unlocking_energy::poly_locks_sim::LockKind;
use unlocking_energy::poly_scenarios::{cross_shards, Registry, SweepRunner};
use unlocking_energy::poly_store::{run_load, KvMix, LoadSpec, PolyStore, StoreConfig, WriteBatch};

fn main() {
    // --- Native: the real store under a zipf-hot mix -------------------
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
    let mix = KvMix::zipf_hot().with_shards(16);
    println!("native poly-store, {} ({} threads, {} shards):", mix.label(), threads, mix.shards);
    for lock in [LockKind::Mutex, LockKind::Ticket, LockKind::Mutexee] {
        let store = PolyStore::new(StoreConfig { shards: mix.shards, lock, ..Default::default() });
        let r = run_load(&store, &LoadSpec::saturating(mix, threads, 20_000, 42));
        println!(
            "{:>8}: {:6.2} Mops/s  p99 {:>7} ns  wait {:>6.1} ms  {:6.1} W (modeled)  {:7.2} uJ/op",
            lock.label(),
            r.throughput / 1e6,
            r.p99_ns,
            r.lock_wait_ns as f64 / 1e6,
            r.energy.avg_power_w,
            r.energy.epo_uj,
        );
    }

    // --- Epoch-guarded maintenance and batched writes ------------------
    let store =
        PolyStore::new(StoreConfig { shards: 8, lock: LockKind::Mutexee, ..Default::default() });
    let mut batch = WriteBatch::new();
    for k in 0..1_000 {
        batch.put_u64(k, k * k);
    }
    store.apply(&batch); // one lock acquisition per shard
    let epoch = store.bump_epoch(); // waits out in-flight scans
    let mut sum = 0u64;
    let seen_at =
        store.scan(|_, v| sum += u64::from_le_bytes(v[..8].try_into().expect("u64 value")));
    println!(
        "\nbatched 1000 puts across 8 shards ({} batches), scan at epoch {seen_at}/{epoch}: \
         sum {sum}",
        store.total_stats().batches,
    );

    // --- Simulated: the same mix on the modeled Xeon -------------------
    println!("\nsimulated Xeon, kv-zipf scenario, 16 threads, shards swept:");
    let base = Registry::builtin()
        .get("kv-zipf")
        .expect("kv-zipf is built in")
        .spec
        .clone()
        .with_duration(8_000_000, 800_000);
    let cells = cross_shards(
        &[base],
        &[LockKind::Mutex, LockKind::Ticket, LockKind::Mutexee],
        &[16],
        &[16],
        42,
    );
    for r in SweepRunner::new().run(&cells) {
        println!(
            "{:>8}: {:6.2} Mops/s  {:6.1} W  {:7.2} uJ/op  p99 acquire {} cycles",
            r.lock.label(),
            r.throughput / 1e6,
            r.avg_power_w,
            r.epo_uj,
            r.p99_acq_cycles
        );
    }
}
