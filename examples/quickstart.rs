//! Quickstart: protect data with MUTEXEE and compare against the
//! glibc-style mutex on your machine.

use lockin::{FutexMutex, Lock, Mutexee};
use poly_meter::TppMeter;

fn hammer<L: lockin::RawLock + Send + Sync>(label: &str) {
    let meter = TppMeter::new();
    let counter = Lock::<u64, L>::new(0);
    let threads = 4;
    let iters: u64 = 200_000;
    let report = meter.measure(|| {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..iters {
                        *counter.lock() += 1;
                    }
                });
            }
        });
        threads as u64 * iters
    });
    assert_eq!(counter.into_inner(), threads as u64 * iters);
    print!("{label:>8}: {:>10.0} acq/s", report.throughput);
    match report.tpp {
        Some(tpp) => println!("  {tpp:>10.0} acq/J (RAPL)"),
        None => println!("  (no RAPL on this host; throughput only)"),
    }
}

fn main() {
    println!("4 threads incrementing one counter:");
    hammer::<FutexMutex>("MUTEX");
    hammer::<Mutexee>("MUTEXEE");
    println!("\nPOLY: the faster lock is (almost always) also the more energy-efficient one.");
}
