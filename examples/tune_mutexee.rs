//! The paper's "fine-tuning script": measure this platform's futex and
//! coherence latencies and print the recommended MUTEXEE parameters.

fn main() {
    println!("Measuring platform latencies (a few seconds)...\n");
    let report = lockin::autotune::tune();
    println!("futex sleep+wake turnaround : {:>10.0} ns", report.futex_roundtrip_ns);
    println!("cache-line transfer         : {:>10.0} ns", report.line_transfer_ns);
    println!("pause (mfence) iteration    : {:>10.1} ns", report.pause_ns);
    println!("\nRecommended MutexeeConfig:");
    println!("  spin_budget            = {} iterations", report.config.spin_budget);
    println!("  spin_budget_mutex_mode = {}", report.config.spin_budget_mutex_mode);
    println!("  unlock_wait            = {} iterations", report.config.unlock_wait);
    println!("  unlock_wait_mutex_mode = {}", report.config.unlock_wait_mutex_mode);
    println!("\nuse lockin::{{Mutexee, MutexeeConfig}}:");
    println!("  let lock = Mutexee::new(config);");
}
