//! Reproduce the POLY result in miniature: run the simulated Xeon with a
//! single contended lock and watch throughput and TPP move together.

use poly_bench::{f2, lock_stress, Horizon, Table};
use poly_locks_sim::{Dist, LockKind, LockParams};

fn main() {
    println!("Single global lock, 20 threads, 1000-cycle critical sections");
    println!("(simulated 2-socket Xeon with RAPL-style energy accounting)\n");
    let h = Horizon { cycles: 30_000_000, warmup: 3_000_000 };
    let mut t = Table::new(&["lock", "Macq/s", "watts", "Kacq/J"]);
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for kind in [
        LockKind::Mutex,
        LockKind::Tas,
        LockKind::Ttas,
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutexee,
    ] {
        let r = lock_stress(
            kind,
            20,
            Dist::Fixed(1000),
            Dist::Uniform(0, 200),
            1,
            LockParams::default(),
            h,
        );
        rows.push((kind.label().to_string(), r.throughput, r.avg_power.total_w, r.tpp));
    }
    for (label, thr, w, tpp) in &rows {
        t.row(vec![label.clone(), f2(thr / 1e6), f2(*w), f2(tpp / 1e3)]);
    }
    t.print();
    let best_thr = rows.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    let best_tpp = rows.iter().max_by(|a, b| a.3.total_cmp(&b.3)).unwrap();
    println!("\nbest throughput: {}   best TPP: {}", best_thr.0, best_tpp.0);
    println!("POLY: energy efficiency and throughput go hand in hand.");
}
