//! Survey this host's energy instrumentation and run a small native
//! lock comparison with whatever is available (RAPL or throughput-only).

use lockin::{FutexMutex, Lock, Mutexee, RawLock, TicketLock, TtasLock};
use poly_meter::{RaplReader, TppMeter};

fn bench<L: RawLock + Send + Sync>(meter: &TppMeter, label: &str) {
    let lock = Lock::<u64, L>::new(0);
    let report = meter.measure(|| {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100_000 {
                        *lock.lock() += 1;
                    }
                });
            }
        });
        400_000
    });
    match (report.power_w, report.tpp) {
        (Some(w), Some(tpp)) => {
            println!("{label:>8}: {:>9.0} acq/s  {w:>6.1} W  {tpp:>9.0} acq/J", report.throughput)
        }
        _ => println!("{label:>8}: {:>9.0} acq/s", report.throughput),
    }
}

fn main() {
    match RaplReader::probe() {
        Some(r) => {
            println!("RAPL domains found:");
            for d in r.domains() {
                println!("  {} (range {} uJ)", d.name, d.max_energy_range_uj);
            }
        }
        None => println!(
            "No RAPL domains under /sys/class/powercap — reporting throughput only.\n\
             (The simulator crates provide calibrated energy accounting instead;\n\
              see `cargo run -p poly-bench --bin fig11`.)"
        ),
    }
    println!();
    let meter = TppMeter::new();
    bench::<TtasLock>(&meter, "TTAS");
    bench::<TicketLock>(&meter, "TICKET");
    bench::<FutexMutex>(&meter, "MUTEX");
    bench::<Mutexee>(&meter, "MUTEXEE");
}
